package sqldb

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"npdbench/internal/obs"
)

// Result is the output of a query: named columns and rows.
type Result struct {
	Columns []string
	Rows    []Row
}

// Query parses and executes a SELECT statement.
func (db *Database) Query(sql string) (*Result, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return db.ExecSelect(stmt)
}

// ExplainSelect executes the statement and returns the planner decisions
// taken (EXPLAIN ANALYZE style): pushed-down predicates with their
// selectivity, join order, join algorithms and intermediate cardinalities.
// Explain runs are always sequential: the note log is ordered.
func (db *Database) ExplainSelect(s *SelectStmt) ([]string, error) {
	var notes []string
	ctx := newExecCtx(ExecOptions{}, nil)
	ctx.explain = &notes
	rel, err := db.evalSelectChain(ctx, s)
	if err != nil {
		return nil, err
	}
	notes = append(notes, fmt.Sprintf("result: %d rows, %d columns (%s profile)",
		rel.numRows(), len(rel.cols), db.Profile))
	return notes, nil
}

// ExecOptions configures one statement execution.
type ExecOptions struct {
	// Parallelism caps the workers any one operator may fan out to; <= 1
	// executes fully sequentially on the calling goroutine (the classic
	// behaviour). Results are bit-identical at any setting.
	Parallelism int
	// Pool bounds the helper workers shared across statements and
	// queries. nil with Parallelism > 1 gives this statement a private
	// pool of its own.
	Pool *Pool
	// Stats, when non-nil, accumulates the parallel-operator counters of
	// this execution.
	Stats *ExecStats
	// Usage, when non-nil, receives the per-query resource accounting of
	// this execution: base-table rows scanned, operator output rows and
	// estimated bytes materialized, subquery-cache hits. The tracker is
	// atomic, so one instance is shared across a query's statements and
	// parallel union arms. Accounting is batched per operator output,
	// never per row.
	Usage *obs.Usage
	// Ctx, when non-nil, carries the query's cancellation signal: a
	// client disconnect or per-query deadline makes operators stop at the
	// next morsel/operator boundary and return Ctx.Err(). Nil executes
	// to completion (the classic batch behaviour).
	Ctx context.Context
	// BatchSize selects the executor: 0 runs the vectorized batch executor
	// at DefaultBatchSize, 1 runs the classic row-at-a-time executor, and
	// any larger value runs the batch executor at that batch size. Results
	// are row-for-row identical at every setting.
	BatchSize int
}

// ExecSelect executes a parsed SELECT statement (including UNION chains)
// sequentially.
func (db *Database) ExecSelect(s *SelectStmt) (*Result, error) {
	return db.ExecSelectOpts(s, ExecOptions{})
}

// ExecSelectOpts executes a parsed SELECT statement under the given
// execution options (intra-query parallelism).
func (db *Database) ExecSelectOpts(s *SelectStmt, opt ExecOptions) (*Result, error) {
	ctx := newExecCtx(opt, nil)
	rel, err := db.evalSelectChain(ctx, s)
	if err != nil {
		return nil, err
	}
	res := &Result{Columns: make([]string, len(rel.cols)), Rows: rel.matRows()}
	for i, c := range rel.cols {
		res.Columns[i] = c.name
	}
	return res, nil
}

// newExecCtx builds the root context of one statement execution.
func newExecCtx(opt ExecOptions, prof *OpProfile) *execCtx {
	batch := opt.BatchSize
	if batch <= 0 {
		batch = DefaultBatchSize
	}
	ctx := &execCtx{cache: newStmtCache(), prof: prof, usage: opt.Usage, ctx: opt.Ctx, batch: batch, stats: opt.Stats}
	if opt.Parallelism > 1 {
		pool := opt.Pool
		if pool == nil {
			pool = NewPool(opt.Parallelism)
		}
		stats := opt.Stats
		if stats == nil {
			stats = &ExecStats{}
		}
		ctx.stats = stats
		ctx.par = &parState{pool: pool, par: opt.Parallelism, stats: stats, ctx: opt.Ctx}
	}
	return ctx
}

// execCtx carries per-statement execution state. The cache is shared by
// every child context of the statement (union arms evaluating in parallel
// included); prof and parNote belong to exactly one goroutine at a time.
// When explain is non-nil, the planner records its decisions (join order,
// algorithms, pushdowns) into it and execution stays sequential.
type execCtx struct {
	cache   *stmtCache
	explain *[]string
	// prof, when non-nil, is the operator-profile node currently being
	// built (EXPLAIN ANALYZE collection; see ProfileSelect). Operators
	// append children via addOp/pushOp, which no-op when prof is nil.
	prof *OpProfile
	// par is the statement's parallel-execution state; nil = sequential.
	par *parState
	// parNote is the pending workers/partitions annotation of the last
	// parallel operator (see setParNote/takeParNote in pool.go).
	parNote string
	// usage is the per-query resource tracker (shared, atomic; nil =
	// accounting off, one nil check per operator).
	usage *obs.Usage
	// ctx is the statement's cancellation signal (nil = non-cancellable);
	// operators poll it through cancelled() at their boundaries and every
	// morselRows rows inside long loops.
	ctx context.Context
	// scratch is a reusable byte buffer for explain notes and profile
	// details, so enabled-tracing formatting on the buildFrom hot path
	// costs one string allocation instead of fmt boxing (goroutine-local:
	// each parallel union arm owns its child context).
	scratch []byte
	// batch is the resolved batch size: > 1 runs the vectorized executor,
	// <= 1 the row-at-a-time one (see ExecOptions.BatchSize).
	batch int
	// stats receives the batch counters even on sequential executions
	// (parallel ones share it with par.stats); nil = not collected.
	stats *ExecStats
	// lastBatches is the pending batches= annotation of the operator just
	// executed (goroutine-local, same discipline as parNote).
	lastBatches int
	// vecs is the reusable batch-executor scratch pool (selection indices,
	// keep flags, key hashes; see vecScratch in batch.go). Goroutine-local
	// like parNote: each parallel union arm owns its child context, and
	// parallel batch tasks allocate task-locally instead of borrowing.
	vecs *vecScratch
}

// stmtCache is the state shared across one statement's evaluation: derived
// tables that occur in many union arms (OBDA unfoldings repeat the same
// mapping views) are materialized once, and sorted row orders are computed
// once per (relation, column) so the sort-merge profile sorts each shared
// mapping view once per statement, not once per union arm (what a real
// server's indexes amortize). Entries are singleflighted: when parallel
// union arms race to the same subquery or sort order, one computes and the
// rest wait.
type stmtCache struct {
	mu         sync.Mutex
	subqueries map[string]*subqueryEntry   // guarded by mu
	sortOrders map[sortKey]*sortOrderEntry // guarded by mu
}

func newStmtCache() *stmtCache {
	return &stmtCache{
		subqueries: make(map[string]*subqueryEntry),
		sortOrders: make(map[sortKey]*sortOrderEntry),
	}
}

type subqueryEntry struct {
	once sync.Once
	rel  *relation
	err  error
}

type sortOrderEntry struct {
	once sync.Once
	idx  []int
}

type sortKey struct {
	rel  *relation
	slot int
}

// sortedOrder is the one context-aware sort-order helper: it serves the
// statement cache when the context has one and falls back to a direct
// computation for standalone joins (nil context).
func (ctx *execCtx) sortedOrder(r *relation, slot int) []int {
	if ctx == nil || ctx.cache == nil {
		return computeSortedOrder(r, slot)
	}
	ctx.cache.mu.Lock()
	e, ok := ctx.cache.sortOrders[sortKey{r, slot}]
	if !ok {
		e = &sortOrderEntry{}
		ctx.cache.sortOrders[sortKey{r, slot}] = e
	}
	ctx.cache.mu.Unlock()
	e.once.Do(func() { e.idx = computeSortedOrder(r, slot) })
	return e.idx
}

// cancelled returns the statement context's error once it is done.
// Nil-safe on a nil receiver and a nil context — the batch paths never
// pay more than two nil checks.
func (ctx *execCtx) cancelled() error {
	if ctx == nil || ctx.ctx == nil {
		return nil
	}
	return ctx.ctx.Err()
}

func (ctx *execCtx) note(format string, args ...any) {
	if ctx.explain != nil {
		*ctx.explain = append(*ctx.explain, fmt.Sprintf(format, args...))
	}
}

// approxValueBytes is the estimated materialized footprint of one Value
// cell (struct header plus average string payload) used by the bytes
// accounting; an estimate is enough for budget enforcement.
const approxValueBytes = 48

// accountScan records base-table rows read into the usage tracker.
func (ctx *execCtx) accountScan(rows int) {
	if ctx.usage != nil {
		ctx.usage.AddRowsScanned(int64(rows))
	}
}

// accountRows records one operator's output relation: rows produced plus
// their estimated materialized bytes. One batched add per operator.
func (ctx *execCtx) accountRows(rel *relation) {
	if ctx.usage != nil && rel != nil {
		n := int64(len(rel.rows))
		ctx.usage.AddRowsProduced(n, n*int64(len(rel.cols))*approxValueBytes)
	}
}

// notePushdown is the pushdown-filter explain/profile recorder of
// buildFrom — the hottest note site (once per conjunct per relation).
// The non-variadic signature avoids boxing its operands and the scratch
// buffer makes each recorded line cost one string allocation.
func (ctx *execCtx) notePushdown(pred Expr, before, after int) {
	note := ctx.takeParNote() // consume even when nothing records it
	batches := ctx.takeBatches()
	if ctx.explain == nil && ctx.prof == nil {
		return
	}
	b := append(ctx.scratch[:0], "pushdown "...)
	b = append(b, pred.String()...)
	if ctx.explain != nil {
		n := len(b)
		b = append(b, ": "...)
		b = strconv.AppendInt(b, int64(before), 10)
		b = append(b, " -> "...)
		b = strconv.AppendInt(b, int64(after), 10)
		b = append(b, " rows"...)
		*ctx.explain = append(*ctx.explain, string(b))
		b = b[:n]
	}
	if ctx.prof != nil {
		b = append(b, note...)
		node := ctx.addOp("filter", string(b))
		node.SetInOut(before, after)
		node.SetBatches(batches)
	}
	ctx.scratch = b[:0]
}

// noteJoin records one join-planning step (algorithm, equi-key count,
// input/output cardinalities) into the explain log and the profile,
// replacing the variadic note/Sprintf pair on the buildFrom join loop.
func (ctx *execCtx) noteJoin(algo string, eqKeys, lrows, rrows, out int) {
	note := ctx.takeParNote()
	batches := ctx.takeBatches()
	if ctx.explain == nil && ctx.prof == nil {
		return
	}
	b := ctx.scratch[:0]
	if ctx.explain != nil {
		b = append(b, algo...)
		b = append(b, " ("...)
		b = strconv.AppendInt(b, int64(eqKeys), 10)
		b = append(b, " equi keys): "...)
		b = strconv.AppendInt(b, int64(lrows), 10)
		b = append(b, " x "...)
		b = strconv.AppendInt(b, int64(rrows), 10)
		b = append(b, " -> "...)
		b = strconv.AppendInt(b, int64(out), 10)
		b = append(b, " rows"...)
		*ctx.explain = append(*ctx.explain, string(b))
		b = b[:0]
	}
	if ctx.prof != nil {
		b = strconv.AppendInt(b, int64(eqKeys), 10)
		b = append(b, " equi keys"...)
		b = append(b, note...)
		node := ctx.addOp(algo, string(b))
		node.SetJoin(lrows, rrows, out, joinBuildRows(algo, lrows, rrows), joinProbes(algo, lrows, rrows))
		node.SetBatches(batches)
	}
	ctx.scratch = b[:0]
}

// addOpf is addOp with lazy detail formatting: the fmt cost is paid only
// when a profile is actually being collected.
func (ctx *execCtx) addOpf(op string, format string, args ...any) *OpProfile {
	if ctx.prof == nil {
		return nil
	}
	return ctx.addOp(op, fmt.Sprintf(format, args...))
}

func (db *Database) evalSelectChain(ctx *execCtx, s *SelectStmt) (*relation, error) {
	if s.Union == nil {
		return db.evalSelect(ctx, s)
	}
	op := "union all"
	if !s.UnionAll {
		op = "union"
	}
	arms := []*SelectStmt{s}
	for u := s.Union; u != nil; u = u.Union {
		arms = append(arms, u)
	}
	node, restore := ctx.pushOp(op, "")
	var head *relation
	var err error
	workers := 1
	if ctx.par != nil && ctx.explain == nil && len(arms) > 1 {
		head, workers, err = db.evalUnionArmsParallel(ctx, arms)
	} else {
		head, err = db.evalUnionArmsSequential(ctx, arms)
	}
	restore()
	if err != nil {
		return nil, err
	}
	ctx.accountRows(head)
	if node != nil {
		detail := fmt.Sprintf("%d arms", len(arms))
		if workers > 1 {
			detail += fmt.Sprintf(" [workers=%d]", workers)
		}
		node.SetDetail(detail)
		node.SetRows(head.numRows())
	}
	if !s.UnionAll {
		before := head.numRows()
		head, err = distinctRelation(ctx, head)
		if err != nil {
			return nil, err
		}
		ctx.accountRows(head)
		batches := ctx.takeBatches()
		dnode := ctx.addOp("distinct", "")
		dnode.SetInOut(before, head.numRows())
		dnode.SetBatches(batches)
	}
	return head, nil
}

func (db *Database) evalUnionArmsSequential(ctx *execCtx, arms []*SelectStmt) (*relation, error) {
	head, err := db.evalSelect(ctx, arms[0])
	if err != nil {
		return nil, err
	}
	// The head's row slice can alias a base table (star fast path), so
	// appending the other arms into it would write through to — or race
	// on — the shared table storage. Concatenate into a fresh slice.
	head.rows = append(make([]Row, 0, head.numRows()), head.matRows()...)
	head.vec = nil
	head.mat = false
	for _, u := range arms[1:] {
		arm, err := db.evalSelect(ctx, u)
		if err != nil {
			return nil, err
		}
		if len(arm.cols) != len(head.cols) {
			return nil, fmt.Errorf("sqldb: UNION arms have %d vs %d columns", len(head.cols), len(arm.cols))
		}
		head.rows = append(head.rows, arm.matRows()...)
	}
	return head, nil
}

// evalUnionArmsParallel evaluates every arm of a union chain concurrently —
// the dominant cost of unfolded OBDA queries, whose UCQs have dozens of
// arms. Arm outputs are concatenated in arm order, so the merged relation
// is bit-identical to the sequential one. Each arm runs under a child
// context that shares the statement cache and parallel state but owns its
// own (pre-created, deterministically ordered) profile node.
func (db *Database) evalUnionArmsParallel(ctx *execCtx, arms []*SelectStmt) (*relation, int, error) {
	rels := make([]*relation, len(arms))
	nodes := make([]*OpProfile, len(arms))
	ctxs := make([]*execCtx, len(arms))
	for i := range arms {
		if ctx.prof != nil {
			nodes[i] = ctx.addOp("arm", fmt.Sprintf("#%d", i+1))
		}
		ctxs[i] = &execCtx{cache: ctx.cache, par: ctx.par, prof: nodes[i], usage: ctx.usage, ctx: ctx.ctx, batch: ctx.batch, stats: ctx.stats}
	}
	ctx.par.stats.UnionArms.Add(int64(len(arms)))
	workers, err := ctx.par.run(len(arms), func(i int) error {
		start := obs.Now()
		rel, armErr := db.evalSelect(ctxs[i], arms[i])
		nodes[i].SetTime(obs.Since(start))
		if armErr != nil {
			return armErr
		}
		nodes[i].SetRows(rel.numRows())
		// Materialize inside the arm's task: the relation is still owned
		// by this goroutine, and the transpose work parallelizes with it.
		rel.matRows()
		rels[i] = rel
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	head := rels[0]
	total := 0
	for _, r := range rels {
		total += len(r.rows)
	}
	rows := make([]Row, 0, total)
	for _, r := range rels {
		if len(r.cols) != len(head.cols) {
			return nil, 0, fmt.Errorf("sqldb: UNION arms have %d vs %d columns", len(head.cols), len(r.cols))
		}
		rows = append(rows, r.rows...)
	}
	return &relation{cols: head.cols, rows: rows}, workers, nil
}

// evalSelect executes a single SELECT block (no union chaining).
func (db *Database) evalSelect(ctx *execCtx, s *SelectStmt) (*relation, error) {
	if err := ctx.cancelled(); err != nil {
		return nil, err
	}
	node, restore := ctx.pushOp("select", "")
	out, err := db.evalSelectBody(ctx, s)
	restore()
	if err != nil {
		return nil, err
	}
	node.SetRows(out.numRows())
	return out, nil
}

func (db *Database) evalSelectBody(ctx *execCtx, s *SelectStmt) (*relation, error) {
	input, remaining, err := db.buildFrom(ctx, s.From, splitConjuncts(s.Where))
	if err != nil {
		return nil, err
	}
	if rest := andAll(remaining); rest != nil {
		before := input.numRows()
		input, err = filterRelation(ctx, input, rest)
		if err != nil {
			return nil, err
		}
		ctx.accountRows(input)
		note := ctx.takeParNote()
		batches := ctx.takeBatches()
		if ctx.prof != nil {
			node := ctx.addOp("filter", rest.String()+note)
			node.SetInOut(before, input.numRows())
			node.SetBatches(batches)
		}
	}

	hasAgg := len(s.GroupBy) > 0 || s.Having != nil
	for _, it := range s.Items {
		if !it.Star && exprHasAggregate(it.Expr) {
			hasAgg = true
		}
	}

	var out *relation
	var inputAligned []Row // input rows aligned to output rows (for ORDER BY)
	if hasAgg {
		vectorized := false
		if ctx.batchOn() && input.vec != nil {
			out, vectorized, err = batchAggregate(ctx, s, input)
			if err != nil {
				return nil, err
			}
		}
		if !vectorized {
			input.matRows()
			out, err = db.evalAggregate(s, input)
			if err != nil {
				return nil, err
			}
		}
		ctx.accountRows(out)
		batches := ctx.takeBatches()
		node := ctx.addOpf("aggregate", "%d groups", len(out.rows))
		node.SetInOut(input.numRows(), len(out.rows))
		node.SetBatches(batches)
	} else {
		// The vectorized projection only applies to pure column selections
		// on vector-only inputs, and only when every ORDER BY key binds to
		// the projected columns (the vec path has no aligned input rows for
		// keys over non-projected columns).
		var vecOut *relation
		if ctx.batchOn() && input.vec != nil && input.rows == nil {
			if v, ok := vecProject(s.Items, input); ok && orderKeysBindable(s.OrderBy, v.cols) {
				vecOut = v
			}
		}
		if vecOut != nil {
			out = vecOut
			ctx.accountBatch(out.numRows(), len(out.cols))
		} else {
			input.matRows()
			out, inputAligned, err = projectItems(s.Items, input)
			if err != nil {
				return nil, err
			}
			ctx.accountRows(out)
		}
		ctx.addOpf("project", "%d columns", len(out.cols)).SetRows(out.numRows())
	}

	if s.Distinct {
		before := out.numRows()
		out, err = distinctRelation(ctx, out)
		if err != nil {
			return nil, err
		}
		inputAligned = nil
		ctx.accountRows(out)
		batches := ctx.takeBatches()
		node := ctx.addOp("distinct", "")
		node.SetInOut(before, out.numRows())
		node.SetBatches(batches)
	}

	if len(s.OrderBy) > 0 {
		out.matRows()
		if err := orderRelation(s.OrderBy, out, input.cols, inputAligned); err != nil {
			return nil, err
		}
		out.vec = nil
		out.mat = false
		ctx.addOpf("sort", "%d keys", len(s.OrderBy)).SetRows(len(out.rows))
	}

	if s.Offset > 0 || (s.Limit >= 0 && s.Limit < out.numRows()) {
		before := out.numRows()
		out.matRows()
		out.vec = nil
		out.mat = false
		if s.Offset > 0 {
			if s.Offset >= len(out.rows) {
				out.rows = nil
			} else {
				out.rows = out.rows[s.Offset:]
			}
		}
		if s.Limit >= 0 && s.Limit < len(out.rows) {
			out.rows = out.rows[:s.Limit]
		}
		ctx.addOp("limit", "").SetInOut(before, len(out.rows))
	}
	return out, nil
}

// orderKeysBindable reports whether every ORDER BY key resolves against the
// given (projected) columns.
func orderKeysBindable(order []OrderItem, cols []colMeta) bool {
	for _, o := range order {
		if !bindable(o.Expr, cols) {
			return false
		}
	}
	return true
}

// buildFrom materializes the FROM clause. WHERE conjuncts are consumed for
// pushdown and join planning; the unconsumed ones are returned.
func (db *Database) buildFrom(ctx *execCtx, from []TableRef, conjuncts []Expr) (*relation, []Expr, error) {
	if len(from) == 0 {
		// SELECT without FROM: a single empty row.
		return &relation{rows: []Row{{}}}, conjuncts, nil
	}
	rels := make([]*relation, len(from))
	for i, tr := range from {
		r, err := db.buildRef(ctx, tr)
		if err != nil {
			return nil, nil, err
		}
		rels[i] = r
	}
	// Push single-relation conjuncts.
	var pending []Expr
	for _, c := range conjuncts {
		placed := false
		for i, r := range rels {
			if bindable(c, r.cols) {
				before := r.numRows()
				fr, err := filterRelation(ctx, r, c)
				if err != nil {
					return nil, nil, err
				}
				ctx.accountRows(fr)
				ctx.notePushdown(c, before, fr.numRows())
				rels[i] = fr
				placed = true
				break
			}
		}
		if !placed {
			pending = append(pending, c)
		}
	}
	// Join planning.
	order := make([]int, len(rels))
	for i := range order {
		order[i] = i
	}
	if db.Profile == ProfileSortMerge {
		// Greedy: start from the smallest relation; each step joins in the
		// smallest relation connected by an equi predicate (else smallest).
		order = greedyOrder(rels, pending)
	}
	cur := rels[order[0]]
	for step := 1; step < len(order); step++ {
		if err := ctx.cancelled(); err != nil {
			return nil, nil, err
		}
		next := rels[order[step]]
		// Conjuncts fully bindable on cur+next become the residual predicate.
		combinedCols := append(append([]colMeta{}, cur.cols...), next.cols...)
		var usable, stillPending []Expr
		for _, c := range pending {
			if bindable(c, combinedCols) {
				usable = append(usable, c)
			} else {
				stillPending = append(stillPending, c)
			}
		}
		eq, residual := extractEquiKeys(usable, cur, next)
		lrows, rrows := cur.numRows(), next.numRows()
		var algo string
		var err error
		switch {
		case len(eq) > 0 && db.Profile == ProfileSortMerge:
			algo = "merge join"
			cur, err = mergeJoin(ctx, cur, next, eq, andAll(residual))
		case len(eq) > 0:
			algo = "hash join"
			cur, err = hashJoin(ctx, cur, next, eq, andAll(residual))
		default:
			algo = "nested loop"
			cur, err = nestedLoopJoin(ctx, cur, next, andAll(residual))
		}
		if err != nil {
			return nil, nil, err
		}
		ctx.accountRows(cur)
		ctx.noteJoin(algo, len(eq), lrows, rrows, cur.numRows())
		pending = stillPending
	}
	return cur, pending, nil
}

// joinBuildRows reports the rows fed into a join's build structure: the
// smaller side for a hash join (its hash table is an ephemeral index),
// both sides for a merge join (sorted orders), none for a nested loop.
func joinBuildRows(algo string, lrows, rrows int) int {
	switch algo {
	case "hash join":
		if lrows < rrows {
			return lrows
		}
		return rrows
	case "merge join":
		return lrows + rrows
	}
	return 0
}

// joinProbes reports point lookups against the build structure (hash join:
// one probe per probe-side row) or, for a nested loop, the row pairs
// examined — the scan-versus-probe measure of the profile.
func joinProbes(algo string, lrows, rrows int) int {
	switch algo {
	case "hash join":
		if lrows < rrows {
			return rrows
		}
		return lrows
	case "nested loop":
		return lrows * rrows
	}
	return 0
}

// greedyOrder returns a join order for the sort-merge profile: smallest
// relation first, then repeatedly the smallest relation that shares an
// equality predicate with what has been joined so far.
func greedyOrder(rels []*relation, conjuncts []Expr) []int {
	n := len(rels)
	used := make([]bool, n)
	order := make([]int, 0, n)
	// seed: smallest
	best := 0
	for i := 1; i < n; i++ {
		if rels[i].numRows() < rels[best].numRows() {
			best = i
		}
	}
	order = append(order, best)
	used[best] = true
	curCols := append([]colMeta{}, rels[best].cols...)
	for len(order) < n {
		cand := -1
		candConnected := false
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			connected := hasEquiBetween(conjuncts, curCols, rels[i].cols)
			if cand == -1 ||
				(connected && !candConnected) ||
				(connected == candConnected && rels[i].numRows() < rels[cand].numRows()) {
				cand = i
				candConnected = connected
			}
		}
		order = append(order, cand)
		used[cand] = true
		curCols = append(curCols, rels[cand].cols...)
	}
	return order
}

func hasEquiBetween(conjuncts []Expr, lcols, rcols []colMeta) bool {
	for _, c := range conjuncts {
		b, ok := c.(*BinOp)
		if !ok || b.Op != OpEq {
			continue
		}
		lc, lok := b.L.(*ColRef)
		rc, rok := b.R.(*ColRef)
		if !lok || !rok {
			continue
		}
		inL1 := findCol(lcols, lc.Table, lc.Name) >= 0
		inR1 := findCol(rcols, rc.Table, rc.Name) >= 0
		inL2 := findCol(lcols, rc.Table, rc.Name) >= 0
		inR2 := findCol(rcols, lc.Table, lc.Name) >= 0
		if (inL1 && inR1) || (inL2 && inR2) {
			return true
		}
	}
	return false
}

// bindable reports whether e can be fully bound against cols.
func bindable(e Expr, cols []colMeta) bool {
	_, err := bindExpr(e, cols)
	return err == nil
}

func (db *Database) buildRef(ctx *execCtx, tr TableRef) (*relation, error) {
	if err := ctx.cancelled(); err != nil {
		return nil, err
	}
	switch t := tr.(type) {
	case *BaseTable:
		tab := db.Table(t.Name)
		if tab == nil {
			return nil, fmt.Errorf("sqldb: unknown table %s", t.Name)
		}
		alias := strings.ToLower(t.Alias)
		if alias == "" {
			alias = strings.ToLower(t.Name)
		}
		cols := make([]colMeta, len(tab.Def.Columns))
		for i, c := range tab.Def.Columns {
			cols[i] = colMeta{table: alias, name: strings.ToLower(c.Name)}
		}
		ctx.accountScan(len(tab.Rows))
		node := ctx.addOp("scan", t.Name)
		node.SetRows(len(tab.Rows))
		rel := &relation{cols: cols, rows: tab.Rows}
		if ctx.batchOn() {
			// The scan is zero-copy in both executors (the relation aliases
			// the table's rows and segment), so it accounts whole — only
			// operators that process batches account per batch.
			rel.vec = tab.Segment()
			node.SetBatches(numBatches(rel.vec.n, ctx.batchSize()))
		}
		return rel, nil
	case *SubqueryTable:
		// Derived tables repeat across the arms of OBDA unfoldings, so
		// each distinct subquery is materialized once per statement. The
		// entry is singleflighted: with parallel union arms, the first
		// arrival computes it and concurrent arrivals wait on the result.
		key := t.Query.String()
		ctx.cache.mu.Lock()
		e, ok := ctx.cache.subqueries[key]
		if !ok {
			e = &subqueryEntry{}
			ctx.cache.subqueries[key] = e
		}
		ctx.cache.mu.Unlock()
		computed := false
		e.once.Do(func() {
			computed = true
			node, restore := ctx.pushOp("subquery", t.Alias)
			e.rel, e.err = db.evalSelectChain(ctx, t.Query)
			restore()
			if e.err == nil {
				node.SetRows(e.rel.numRows())
			}
		})
		if e.err != nil {
			return nil, e.err
		}
		inner := e.rel
		if !computed {
			if ctx.usage != nil {
				ctx.usage.AddCacheHits(1)
			}
			ctx.addOp("subquery", t.Alias+" (cached)").SetRows(inner.numRows())
		}
		alias := strings.ToLower(t.Alias)
		cols := make([]colMeta, len(inner.cols))
		for i, c := range inner.cols {
			cols[i] = colMeta{table: alias, name: c.name}
		}
		// The wrapper shares both backings of the cached inner relation;
		// each wrapper is owned by one goroutine, so a later matRows on it
		// materializes locally without racing other arms on the cache entry.
		return &relation{cols: cols, rows: inner.rows, vec: inner.vec}, nil
	case *JoinRef:
		l, err := db.buildRef(ctx, t.L)
		if err != nil {
			return nil, err
		}
		r, err := db.buildRef(ctx, t.R)
		if err != nil {
			return nil, err
		}
		lrows, rrows := l.numRows(), r.numRows()
		record := func(algo string, out *relation, err error) (*relation, error) {
			if err != nil {
				return nil, err
			}
			ctx.accountRows(out)
			note := ctx.takeParNote()
			batches := ctx.takeBatches()
			if ctx.prof != nil {
				node := ctx.addOp(algo, strings.ToLower(t.Kind.String())+note)
				node.SetJoin(lrows, rrows, out.numRows(), joinBuildRows(algo, lrows, rrows), joinProbes(algo, lrows, rrows))
				node.SetBatches(batches)
			}
			return out, nil
		}
		switch t.Kind {
		case JoinCross:
			out, err := nestedLoopJoin(ctx, l, r, nil)
			return record("nested loop", out, err)
		case JoinNatural:
			algo := "hash join"
			if db.Profile == ProfileSortMerge {
				algo = "merge join"
			}
			out, err := naturalJoin(ctx, l, r, db.Profile)
			return record(algo, out, err)
		case JoinLeft:
			out, err := leftJoin(ctx, l, r, t.On)
			return record("left join", out, err)
		default: // inner
			conj := splitConjuncts(t.On)
			eq, residual := extractEquiKeys(conj, l, r)
			if len(eq) == 0 {
				out, err := nestedLoopJoin(ctx, l, r, t.On)
				return record("nested loop", out, err)
			}
			if db.Profile == ProfileSortMerge {
				out, err := mergeJoin(ctx, l, r, eq, andAll(residual))
				return record("merge join", out, err)
			}
			out, err := hashJoin(ctx, l, r, eq, andAll(residual))
			return record("hash join", out, err)
		}
	}
	return nil, fmt.Errorf("sqldb: unsupported table reference %T", tr)
}

// projectItems applies the SELECT list to the input relation. It returns
// the projected relation and, for non-star projections, the input rows
// aligned with the output rows (for ORDER BY over non-projected columns).
func projectItems(items []SelectItem, input *relation) (*relation, []Row, error) {
	// Pure star fast path.
	if len(items) == 1 && items[0].Star && items[0].Table == "" {
		return input, input.rows, nil
	}
	var outCols []colMeta
	type producer struct {
		star  bool
		slots []int // for star
		fn    evalFn
	}
	var prods []producer
	for _, it := range items {
		if it.Star {
			var slots []int
			q := strings.ToLower(it.Table)
			for i, c := range input.cols {
				if q == "" || c.table == q {
					outCols = append(outCols, c)
					slots = append(slots, i)
				}
			}
			if len(slots) == 0 {
				return nil, nil, fmt.Errorf("sqldb: %s.* matches no columns", it.Table)
			}
			prods = append(prods, producer{star: true, slots: slots})
			continue
		}
		fn, err := bindExpr(it.Expr, input.cols)
		if err != nil {
			return nil, nil, err
		}
		name := strings.ToLower(it.Alias)
		table := ""
		if name == "" {
			if cr, ok := it.Expr.(*ColRef); ok {
				name = strings.ToLower(cr.Name)
				table = strings.ToLower(cr.Table)
			} else {
				name = strings.ToLower(it.Expr.String())
			}
		}
		outCols = append(outCols, colMeta{table: table, name: name})
		prods = append(prods, producer{fn: fn})
	}
	out := &relation{cols: outCols, rows: make([]Row, 0, len(input.rows))}
	for _, row := range input.rows {
		nr := make(Row, 0, len(outCols))
		for _, p := range prods {
			if p.star {
				for _, s := range p.slots {
					nr = append(nr, row[s])
				}
				continue
			}
			v, err := p.fn(row)
			if err != nil {
				return nil, nil, err
			}
			nr = append(nr, v)
		}
		out.rows = append(out.rows, nr)
	}
	return out, input.rows, nil
}

// orderRelation sorts out by the ORDER BY items; keys resolve against the
// output columns first, then against the aligned input rows.
func orderRelation(order []OrderItem, out *relation, inCols []colMeta, inputAligned []Row) error {
	// Sorting happens in place, and out can alias a base table's rows
	// (star fast path): reordering those would corrupt the table for every
	// other query — and race with concurrent executions of a shared plan.
	// Sort a copy of the slice instead.
	out.rows = append(make([]Row, 0, len(out.rows)), out.rows...)
	keys := make([]evalFn, len(order))
	desc := make([]bool, len(order))
	useInput := false
	for i, o := range order {
		desc[i] = o.Desc
		if fn, err := bindExpr(o.Expr, out.cols); err == nil {
			keys[i] = fn
			continue
		}
		if inputAligned == nil {
			return fmt.Errorf("sqldb: cannot resolve ORDER BY expression %s", o.Expr)
		}
		fn, err := bindExpr(o.Expr, inCols)
		if err != nil {
			return err
		}
		useInput = true
		slot := i
		inner := fn
		_ = slot
		keys[i] = inner // marked: evaluated against input row
	}
	if !useInput {
		return sortRelation(out, keys, desc)
	}
	// Sort output and aligned input rows together using per-item source.
	type pair struct {
		out, in Row
		keys    []Value
	}
	if len(inputAligned) != len(out.rows) {
		return fmt.Errorf("sqldb: internal: ORDER BY alignment lost")
	}
	ps := make([]pair, len(out.rows))
	for i := range out.rows {
		kv := make([]Value, len(order))
		for j, o := range order {
			var src Row
			if fn, err := bindExpr(o.Expr, out.cols); err == nil {
				src = out.rows[i]
				v, err := fn(src)
				if err != nil {
					return err
				}
				kv[j] = v
				continue
			}
			fn, err := bindExpr(o.Expr, inCols)
			if err != nil {
				return err
			}
			v, err := fn(inputAligned[i])
			if err != nil {
				return err
			}
			kv[j] = v
		}
		ps[i] = pair{out.rows[i], inputAligned[i], kv}
	}
	sort.SliceStable(ps, func(a, b int) bool {
		for j := range desc {
			c, err := Compare(ps[a].keys[j], ps[b].keys[j])
			if err != nil || c == 0 {
				continue
			}
			if desc[j] {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	for i := range ps {
		out.rows[i] = ps[i].out
	}
	return nil
}
