package sqldb

import (
	"context"
	"sync"
	"sync/atomic"
)

// Intra-query parallelism (morsel-driven, after Leis et al.): operators
// that have enough work fan it out over a bounded worker pool — union arms
// of the big OBDA unfoldings run concurrently, hash joins build and probe
// partitioned hash tables, and scans/filters split their input into
// fixed-size morsels. Every parallel operator merges its pieces in input
// order, so results are bit-identical to sequential execution; the only
// observable differences are wall time and the workers= annotations in
// EXPLAIN ANALYZE.
//
// This file is the engine's one sanctioned goroutine spawn point: every
// parallel operator fans out through parState.run, whose workers observe
// the shared cooperative-stop flag. The gohygiene lint pass forbids naked
// go statements anywhere else in internal/sqldb and internal/core.
//
//lint:go-allowed bounded worker pool; tasks observe the stop flag

const (
	// morselRows is the chunk size scan, filter, and probe operators hand
	// to one worker task. Small enough to balance skewed predicates, large
	// enough that the per-task bookkeeping disappears in the scan cost.
	morselRows = 1024
	// minParallelRows is the operator input size below which fanning out
	// cannot win: coordination costs more than a single worker's pass.
	minParallelRows = 2048
	// maxJoinPartitions caps the partition count of a parallel hash join;
	// beyond this the per-partition build scans dominate.
	maxJoinPartitions = 16
)

// Pool is a bounded supply of helper workers shared by every parallel
// operator of every statement executed against it. Helpers are borrowed
// without blocking: when the pool is drained (all workers busy in other
// operators or other concurrent queries), the requesting operator simply
// runs on its calling goroutine alone. Nested parallel operators therefore
// can never deadlock on pool capacity.
type Pool struct {
	tokens chan struct{}
	size   int // helper slots when fully idle
}

// NewPool returns a pool that will lend out at most workers-1 helper
// goroutines at any moment (the calling goroutine of each operator is the
// always-available worker number one). workers < 2 yields a pool that
// never lends a helper.
func NewPool(workers int) *Pool {
	n := workers - 1
	if n < 0 {
		n = 0
	}
	p := &Pool{tokens: make(chan struct{}, n+1), size: n}
	for i := 0; i < n; i++ {
		p.tokens <- struct{}{}
	}
	return p
}

// Idle reports whether every helper slot is back in the pool — no
// statement is currently borrowing workers. Serving-path tests use this
// to assert that canceled or failed queries return their slots.
func (p *Pool) Idle() bool {
	if p == nil {
		return true
	}
	return len(p.tokens) == p.size
}

// tryAcquire borrows up to n helper slots without blocking and returns how
// many it got.
func (p *Pool) tryAcquire(n int) int {
	got := 0
	for got < n {
		select {
		case <-p.tokens:
			got++
		default:
			return got
		}
	}
	return got
}

// release returns n helper slots to the pool.
func (p *Pool) release(n int) {
	for i := 0; i < n; i++ {
		p.tokens <- struct{}{}
	}
}

// ExecStats accumulates the parallel-execution counters of one or more
// statement executions. All fields are atomics: parallel operators inside
// one statement, and concurrent statements sharing one stats block, may
// bump them simultaneously. core publishes these as the
// npdbench_exec_parallel_* metric family.
type ExecStats struct {
	// Tasks counts operator tasks (union arms, partitions, morsels)
	// executed by the parallel driver, whoever ran them.
	Tasks atomic.Int64
	// Workers counts helper goroutines launched (excludes the calling
	// goroutine, which always participates).
	Workers atomic.Int64
	// UnionArms counts union arms evaluated through the parallel driver.
	UnionArms atomic.Int64
	// JoinPartitions counts hash-join partitions built in parallel.
	JoinPartitions atomic.Int64
	// Morsels counts scan/filter/probe row chunks processed in parallel
	// operators.
	Morsels atomic.Int64
	// Batches counts fixed-size row batches processed by vectorized
	// operators (sequential and parallel alike).
	Batches atomic.Int64
}

// add folds other into s (used to roll per-statement stats up into
// engine-lifetime aggregates).
func (s *ExecStats) Add(other *ExecStats) {
	if s == nil || other == nil {
		return
	}
	s.Tasks.Add(other.Tasks.Load())
	s.Workers.Add(other.Workers.Load())
	s.UnionArms.Add(other.UnionArms.Load())
	s.JoinPartitions.Add(other.JoinPartitions.Load())
	s.Morsels.Add(other.Morsels.Load())
	s.Batches.Add(other.Batches.Load())
}

// parState is the per-statement handle on the parallel execution machinery;
// a nil parState (or one on a sequential execCtx) means every operator runs
// inline. It is shared by all child contexts of one statement, so its
// fields must be safe for concurrent use.
type parState struct {
	pool  *Pool
	par   int // per-operator worker cap, >= 2 whenever parState exists
	stats *ExecStats
	// ctx carries the statement's cancellation signal; workers stop
	// claiming tasks once it is done. Nil means non-cancellable.
	ctx context.Context
}

// cancelled returns the context's error once the statement's deadline has
// passed or its client has gone away; nil-safe on every level.
func (ps *parState) cancelled() error {
	if ps == nil || ps.ctx == nil {
		return nil
	}
	return ps.ctx.Err()
}

// run executes tasks 0..n-1 with the calling goroutine plus up to par-1
// helpers borrowed non-blockingly from the pool. Tasks are claimed from a
// shared counter (morsel dispatch); after any task fails, workers stop
// claiming new ones. The error reported is the failing task with the
// lowest index — the same one sequential execution would have hit first —
// so error propagation is deterministic regardless of scheduling. Returns
// the number of workers that participated.
func (ps *parState) run(n int, task func(i int) error) (int, error) {
	if n <= 0 {
		return 0, nil
	}
	helpers := 0
	if ps != nil && n > 1 {
		want := ps.par - 1
		if want > n-1 {
			want = n - 1
		}
		if want > 0 {
			helpers = ps.pool.tryAcquire(want)
		}
	}
	if helpers == 0 {
		// Pool drained or single task: inline, in order.
		for i := 0; i < n; i++ {
			if err := ps.cancelled(); err != nil {
				ps.countTasks(i, 0)
				return 1, err
			}
			if err := task(i); err != nil {
				ps.countTasks(i+1, 0)
				return 1, err
			}
		}
		ps.countTasks(n, 0)
		return 1, nil
	}
	// From here on the helpers are borrowed; return them even if a task
	// panics — a leaked slot would silently shrink the pool for every
	// later query in a long-running server.
	defer ps.pool.release(helpers)
	var (
		next     atomic.Int64
		stop     atomic.Bool
		mu       sync.Mutex
		errIdx   = -1
		firstErr error
	)
	work := func() {
		for !stop.Load() {
			if err := ps.cancelled(); err != nil {
				mu.Lock()
				if errIdx == -1 {
					errIdx, firstErr = n, err
				}
				mu.Unlock()
				stop.Store(true)
				return
			}
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			if err := task(i); err != nil {
				mu.Lock()
				if errIdx == -1 || i < errIdx {
					errIdx, firstErr = i, err
				}
				mu.Unlock()
				stop.Store(true)
				return
			}
		}
	}
	var wg sync.WaitGroup
	wg.Add(helpers)
	for i := 0; i < helpers; i++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
	claimed := int(next.Load())
	if claimed > n {
		claimed = n
	}
	ps.countTasks(claimed, helpers)
	return helpers + 1, firstErr
}

func (ps *parState) countTasks(tasks, workers int) {
	if ps == nil || ps.stats == nil {
		return
	}
	ps.stats.Tasks.Add(int64(tasks))
	ps.stats.Workers.Add(int64(workers))
}

// parWorkers reports the worker cap of this context: 1 when execution is
// sequential.
func (ctx *execCtx) parWorkers() int {
	if ctx == nil || ctx.par == nil {
		return 1
	}
	return ctx.par.par
}

// setParNote stashes the parallel-execution annotation of the operator
// just executed; the call site that owns the operator's profile node
// collects it with takeParNote and appends it to the detail string.
func (ctx *execCtx) setParNote(note string) {
	if ctx != nil {
		ctx.parNote = note
	}
}

// takeParNote returns and clears the pending annotation.
func (ctx *execCtx) takeParNote() string {
	if ctx == nil || ctx.parNote == "" {
		return ""
	}
	note := ctx.parNote
	ctx.parNote = ""
	return note
}
