package sqldb

import (
	"fmt"
	"strings"
	"time"
)

// OpProfile is one node of the EXPLAIN ANALYZE operator tree: the executor
// records, per physical operator, its output cardinality, input
// cardinalities, and the algorithm-specific work measures (hash-build
// sizes, probe counts, rows examined). Collected by Database.ProfileSelect;
// rendered by Render. All setters are nil-receiver-safe so instrumentation
// sites need no profiling-enabled branches.
type OpProfile struct {
	// Op is the physical operator: "query", "union", "select", "scan",
	// "subquery", "filter", "hash join", "merge join", "nested loop",
	// "left join", "natural join", "aggregate", "project", "distinct",
	// "sort", "limit".
	Op string `json:"op"`
	// Detail carries the operand: table name, predicate, key count.
	Detail string `json:"detail,omitempty"`
	// Rows is the operator's output cardinality.
	Rows int `json:"rows"`
	// RowsIn is the input cardinality for row-reducing operators
	// (filter, distinct, limit); -1 when not applicable.
	RowsIn int `json:"rows_in,omitempty"`
	// LeftRows/RightRows are the join input cardinalities; -1 when n/a.
	LeftRows  int `json:"left_rows,omitempty"`
	RightRows int `json:"right_rows,omitempty"`
	// BuildRows counts rows fed into the operator's build structure: the
	// hash table of a hash join (its ephemeral index), or the rows sorted
	// by a merge join.
	BuildRows int `json:"build_rows,omitempty"`
	// Probes counts point lookups against the build structure (hash join
	// probe-side rows) or, for a nested loop, the row pairs examined — the
	// executor's "index probe vs scan" measure.
	Probes int `json:"probes,omitempty"`
	// Batches counts the fixed-size row batches this operator processed on
	// the vectorized path; 0 means the operator ran row-at-a-time (row
	// executor, or a batch-executor fallback).
	Batches int `json:"batches,omitempty"`
	// TimeUS is the operator's wall time in microseconds, recorded only
	// where the executor times work explicitly (parallel union arms); 0
	// means not measured.
	TimeUS int64 `json:"time_us,omitempty"`

	Children []*OpProfile `json:"children,omitempty"`
}

func newOp(op, detail string) *OpProfile {
	return &OpProfile{Op: op, Detail: detail, RowsIn: -1, LeftRows: -1, RightRows: -1}
}

// SetRows records the output cardinality.
func (p *OpProfile) SetRows(n int) {
	if p != nil {
		p.Rows = n
	}
}

// SetInOut records a row-reducing operator's input and output counts.
func (p *OpProfile) SetInOut(in, out int) {
	if p != nil {
		p.RowsIn, p.Rows = in, out
	}
}

// SetJoin records join cardinalities and work measures.
func (p *OpProfile) SetJoin(left, right, out, build, probes int) {
	if p != nil {
		p.LeftRows, p.RightRows, p.Rows = left, right, out
		p.BuildRows, p.Probes = build, probes
	}
}

// SetBatches records how many vectorized batches the operator processed.
func (p *OpProfile) SetBatches(n int) {
	if p != nil {
		p.Batches = n
	}
}

// SetTime records the operator's wall time.
func (p *OpProfile) SetTime(d time.Duration) {
	if p != nil {
		p.TimeUS = d.Microseconds()
	}
}

// SetDetail replaces the operand description.
func (p *OpProfile) SetDetail(d string) {
	if p != nil {
		p.Detail = d
	}
}

// TotalOps counts the nodes of the tree.
func (p *OpProfile) TotalOps() int {
	if p == nil {
		return 0
	}
	n := 1
	for _, c := range p.Children {
		n += c.TotalOps()
	}
	return n
}

// TotalRows sums output rows over the whole tree (a work proxy: every row
// an operator emitted had to be materialized).
func (p *OpProfile) TotalRows() int {
	if p == nil {
		return 0
	}
	n := p.Rows
	for _, c := range p.Children {
		n += c.TotalRows()
	}
	return n
}

// Find returns the first node with the given Op in a depth-first walk.
func (p *OpProfile) Find(op string) *OpProfile {
	if p == nil {
		return nil
	}
	if p.Op == op {
		return p
	}
	for _, c := range p.Children {
		if hit := c.Find(op); hit != nil {
			return hit
		}
	}
	return nil
}

// Render draws the EXPLAIN ANALYZE tree.
func (p *OpProfile) Render() string {
	if p == nil {
		return ""
	}
	var sb strings.Builder
	p.render(&sb, "", true, true)
	return sb.String()
}

func (p *OpProfile) render(sb *strings.Builder, prefix string, last, root bool) {
	line := p.Op
	if p.Detail != "" {
		line += " " + p.Detail
	}
	line += " (" + p.cardinality() + ")"
	if p.TimeUS > 0 {
		line += fmt.Sprintf(" t=%dus", p.TimeUS)
	}
	if root {
		sb.WriteString(line + "\n")
	} else {
		branch := "├─ "
		if last {
			branch = "└─ "
		}
		sb.WriteString(prefix + branch + line + "\n")
	}
	childPrefix := prefix
	if !root {
		if last {
			childPrefix += "   "
		} else {
			childPrefix += "│  "
		}
	}
	for i, c := range p.Children {
		c.render(sb, childPrefix, i == len(p.Children)-1, false)
	}
}

// cardinality formats the row counts appropriate to the operator shape.
func (p *OpProfile) cardinality() string {
	var s string
	switch {
	case p.LeftRows >= 0 && p.RightRows >= 0:
		s = fmt.Sprintf("%d × %d → %d rows", p.LeftRows, p.RightRows, p.Rows)
		if p.BuildRows > 0 {
			s += fmt.Sprintf(", build=%d", p.BuildRows)
		}
		if p.Probes > 0 {
			s += fmt.Sprintf(", probes=%d", p.Probes)
		}
	case p.RowsIn >= 0:
		s = fmt.Sprintf("%d → %d rows", p.RowsIn, p.Rows)
	default:
		s = fmt.Sprintf("rows=%d", p.Rows)
	}
	if p.Batches > 0 {
		s += fmt.Sprintf(", batches=%d", p.Batches)
	}
	return s
}

// ---- execCtx profiling hooks -------------------------------------------

var noRestore = func() {}

// pushOp appends a child operator under the current profile node and makes
// it current until the returned restore function runs. Disabled profiling
// returns a nil node (whose setters no-op) and a shared no-op restore, so
// the off path allocates nothing.
func (ctx *execCtx) pushOp(op, detail string) (*OpProfile, func()) {
	if ctx.prof == nil {
		return nil, noRestore
	}
	node := newOp(op, detail)
	parent := ctx.prof
	parent.Children = append(parent.Children, node)
	ctx.prof = node
	return node, func() { ctx.prof = parent }
}

// addOp appends a leaf operator under the current profile node.
func (ctx *execCtx) addOp(op, detail string) *OpProfile {
	if ctx.prof == nil {
		return nil
	}
	node := newOp(op, detail)
	ctx.prof.Children = append(ctx.prof.Children, node)
	return node
}

// ProfileSelect executes a parsed SELECT statement like ExecSelect while
// collecting the operator-level execution profile (EXPLAIN ANALYZE): per
// operator, rows in/out, join algorithm, hash-build size and probe count.
func (db *Database) ProfileSelect(s *SelectStmt) (*Result, *OpProfile, error) {
	return db.ProfileSelectOpts(s, ExecOptions{})
}

// ProfileSelectOpts is ProfileSelect under the given execution options;
// with parallelism enabled the profile additionally carries per-arm wall
// times and workers=/morsels=/partitions= annotations.
func (db *Database) ProfileSelectOpts(s *SelectStmt, opt ExecOptions) (*Result, *OpProfile, error) {
	root := newOp("query", "")
	ctx := newExecCtx(opt, root)
	rel, err := db.evalSelectChain(ctx, s)
	if err != nil {
		return nil, nil, err
	}
	root.SetRows(rel.numRows())
	res := &Result{Columns: make([]string, len(rel.cols)), Rows: rel.matRows()}
	for i, c := range rel.cols {
		res.Columns[i] = c.name
	}
	return res, root, nil
}
