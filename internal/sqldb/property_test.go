package sqldb

import (
	"fmt"
	"math/rand"
	"testing"
)

// Property: the two planner profiles implement the same SQL semantics.
// Random instances of a two-table schema are generated and a panel of
// query shapes must return identical row multisets under both profiles.
func TestProfilesAgreeOnRandomInstances(t *testing.T) {
	queries := []string{
		"SELECT a.k, b.v FROM ta a, tb b WHERE a.k = b.k",
		"SELECT a.k, b.v FROM ta a JOIN tb b ON a.k = b.k AND a.v < b.v",
		"SELECT a.k FROM ta a LEFT JOIN tb b ON a.k = b.k WHERE b.k IS NULL",
		"SELECT a.k, COUNT(*) FROM ta a, tb b WHERE a.k = b.k GROUP BY a.k",
		"SELECT DISTINCT b.v FROM ta a, tb b WHERE a.k = b.k AND a.v > 50",
		"SELECT a.k FROM ta a WHERE a.v BETWEEN 20 AND 80 UNION SELECT b.k FROM tb b",
	}
	for trial := 0; trial < 12; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		build := func(profile Profile) *Database {
			db := NewDatabase("prop")
			db.Profile = profile
			for _, name := range []string{"ta", "tb"} {
				if _, err := db.CreateTable(&TableDef{
					Name: name,
					Columns: []Column{
						{Name: "k", Type: TInt},
						{Name: "v", Type: TInt},
					},
				}); err != nil {
					t.Fatal(err)
				}
			}
			// duplicate keys and NULLs are deliberately common
			localRng := rand.New(rand.NewSource(int64(trial)))
			for i := 0; i < 30+localRng.Intn(40); i++ {
				for _, name := range []string{"ta", "tb"} {
					k := Value(NewInt(int64(localRng.Intn(12))))
					if localRng.Intn(8) == 0 {
						k = Null
					}
					v := NewInt(int64(localRng.Intn(100)))
					if err := db.Insert(name, Row{k, v}); err != nil {
						t.Fatal(err)
					}
				}
			}
			return db
		}
		_ = rng
		h := build(ProfileHashJoin)
		m := build(ProfileSortMerge)
		for _, q := range queries {
			rh, err := h.Query(q)
			if err != nil {
				t.Fatalf("trial %d hash %q: %v", trial, q, err)
			}
			rm, err := m.Query(q)
			if err != nil {
				t.Fatalf("trial %d merge %q: %v", trial, q, err)
			}
			fh := relationFingerprint(&relation{rows: rh.Rows})
			fm := relationFingerprint(&relation{rows: rm.Rows})
			if fh != fm {
				t.Fatalf("trial %d: profiles disagree on %q:\nhash:\n%s\nmerge:\n%s",
					trial, q, fh, fm)
			}
		}
	}
}

// Property: UNION is UNION ALL followed by DISTINCT.
func TestUnionEqualsDistinctUnionAll(t *testing.T) {
	db := testDB(t, ProfileHashJoin)
	u, err := db.Query("SELECT branch FROM TEmployee UNION SELECT branch FROM TAssignment")
	if err != nil {
		t.Fatal(err)
	}
	ua, err := db.Query("SELECT DISTINCT branch FROM (SELECT branch FROM TEmployee UNION ALL SELECT branch FROM TAssignment) AS x")
	if err != nil {
		t.Fatal(err)
	}
	if relationFingerprint(&relation{rows: u.Rows}) != relationFingerprint(&relation{rows: ua.Rows}) {
		t.Fatal("UNION != DISTINCT(UNION ALL)")
	}
}

// Property: LIMIT n returns a prefix of the unlimited ordered result.
func TestLimitIsPrefix(t *testing.T) {
	db := testDB(t, ProfileHashJoin)
	full, err := db.Query("SELECT id FROM TEmployee ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n <= len(full.Rows); n++ {
		part, err := db.Query(fmt.Sprintf("SELECT id FROM TEmployee ORDER BY id LIMIT %d", n))
		if err != nil {
			t.Fatal(err)
		}
		if len(part.Rows) != n {
			t.Fatalf("LIMIT %d returned %d rows", n, len(part.Rows))
		}
		for i := range part.Rows {
			if part.Rows[i][0] != full.Rows[i][0] {
				t.Fatalf("LIMIT %d row %d differs", n, i)
			}
		}
	}
}

// Property: COUNT(*) equals the row count of the unaggregated query.
func TestCountMatchesRowCount(t *testing.T) {
	db := testDB(t, ProfileHashJoin)
	for _, where := range []string{"", " WHERE branch = 'B1'", " WHERE id > 1"} {
		rows, err := db.Query("SELECT id FROM TEmployee" + where)
		if err != nil {
			t.Fatal(err)
		}
		cnt, err := db.Query("SELECT COUNT(*) FROM TEmployee" + where)
		if err != nil {
			t.Fatal(err)
		}
		if cnt.Rows[0][0].I != int64(len(rows.Rows)) {
			t.Fatalf("COUNT mismatch for %q: %d vs %d", where, cnt.Rows[0][0].I, len(rows.Rows))
		}
	}
}
