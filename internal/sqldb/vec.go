package sqldb

import "math"

// Execution-time columnar data. A vecData is one relation's columns as
// typed arrays; batch operators read them with type-specialized loops and
// produce fresh vecDatas by gathering survivor indices, sharing string
// dictionaries by reference so no operator ever copies a string payload.
// A vecData is immutable once visible to a consumer: base-table segments
// are shared by every statement, and intermediate vectors may be shared
// between a subquery cache entry and many union arms.

// colvec is one column: exactly one typed array is populated, selected by
// kind (ints serves INTEGER, BOOLEAN and DATE, which all store in Value.I).
type colvec struct {
	kind   Kind
	nulls  nullBitmap
	ints   []int64
	floats []float64
	dict   *strDict
	codes  []uint32
	geos   []*Geometry
}

// value materializes cell i as a Value (a stack struct; no heap traffic).
func (c *colvec) value(i int) Value {
	if c.nulls.get(i) {
		return Null
	}
	switch c.kind {
	case KindInt, KindBool, KindDate:
		return Value{Kind: c.kind, I: c.ints[i]}
	case KindFloat:
		return Value{Kind: KindFloat, F: c.floats[i]}
	case KindString:
		return Value{Kind: KindString, S: c.dict.vals[c.codes[i]]}
	case KindGeometry:
		return Value{Kind: KindGeometry, G: c.geos[i]}
	}
	return Null
}

// vecData is a columnar relation body: n rows over typed column vectors.
type vecData struct {
	n    int
	cols []colvec
}

// rowInto fills a reusable scratch row with row i (the bridge that lets
// arbitrary bound evalFns run over vectors without per-row allocation).
func (vd *vecData) rowInto(buf Row, i int) {
	for c := range vd.cols {
		buf[c] = vd.cols[c].value(i)
	}
}

// materializeRows transposes the vectors back into rows — the fallback
// boundary cost paid once when an unconverted operator needs []Row.
func (vd *vecData) materializeRows() []Row {
	rows := make([]Row, vd.n)
	cells := make([]Value, vd.n*len(vd.cols))
	w := len(vd.cols)
	for i := 0; i < vd.n; i++ {
		row := cells[i*w : (i+1)*w : (i+1)*w]
		vd.rowInto(row, i)
		rows[i] = row
	}
	return rows
}

// ---- key hashing over vectors ------------------------------------------
//
// Batch join/dedup/group keys never build per-row key strings: each key
// column mixes a (class, payload) pair into a running per-row hash, with
// the class tags chosen so the hash respects Value.Key() equivalence —
// integers and small integral floats share the int class, NaNs collapse,
// dates and booleans stay distinct from integers. Candidate collisions are
// verified with Value.keyEq, so correctness never rests on the hash.

const (
	hashOffset64 = 14695981039346656037
	hashPrime64  = 1099511628211
)

func mix64(h, x uint64) uint64 {
	h ^= x
	h *= hashPrime64
	h ^= h >> 29
	return h
}

// hashCellKey returns the class hash of one materialized value; the
// keyEq-equivalence twin of Value.Key().
func hashCellKey(v Value) uint64 {
	if i, ok := v.intClass(); ok {
		return mix64(0x01, uint64(i))
	}
	switch v.Kind {
	case KindNull:
		return mix64(0x00, 0)
	case KindFloat:
		f := v.F
		if math.IsNaN(f) {
			f = math.NaN()
		}
		return mix64(0x02, math.Float64bits(f))
	case KindString:
		return mix64(0x03, hashString(v.S))
	case KindBool:
		return mix64(0x04, uint64(v.I))
	case KindDate:
		return mix64(0x05, uint64(v.I))
	case KindGeometry:
		return mix64(0x06, hashString(v.G.String()))
	}
	return mix64(0x07, 0)
}

// hashColRange mixes the key-class hashes of rows [lo,hi) of column c into
// dst (dst[j] covers row lo+j). Type-specialized: string columns reuse the
// dictionary's precomputed per-code hashes, integer columns never touch a
// Value.
func (c *colvec) hashColRange(dst []uint64, lo, hi int) {
	switch c.kind {
	case KindInt:
		for j, i := 0, lo; i < hi; j, i = j+1, i+1 {
			if c.nulls.get(i) {
				dst[j] = mix64(dst[j], mix64(0x00, 0))
				continue
			}
			dst[j] = mix64(dst[j], mix64(0x01, uint64(c.ints[i])))
		}
	case KindBool:
		for j, i := 0, lo; i < hi; j, i = j+1, i+1 {
			if c.nulls.get(i) {
				dst[j] = mix64(dst[j], mix64(0x00, 0))
				continue
			}
			dst[j] = mix64(dst[j], mix64(0x04, uint64(c.ints[i])))
		}
	case KindDate:
		for j, i := 0, lo; i < hi; j, i = j+1, i+1 {
			if c.nulls.get(i) {
				dst[j] = mix64(dst[j], mix64(0x00, 0))
				continue
			}
			dst[j] = mix64(dst[j], mix64(0x05, uint64(c.ints[i])))
		}
	case KindFloat:
		for j, i := 0, lo; i < hi; j, i = j+1, i+1 {
			if c.nulls.get(i) {
				dst[j] = mix64(dst[j], mix64(0x00, 0))
				continue
			}
			dst[j] = mix64(dst[j], hashCellKey(Value{Kind: KindFloat, F: c.floats[i]}))
		}
	case KindString:
		for j, i := 0, lo; i < hi; j, i = j+1, i+1 {
			if c.nulls.get(i) {
				dst[j] = mix64(dst[j], mix64(0x00, 0))
				continue
			}
			dst[j] = mix64(dst[j], mix64(0x03, c.dict.hashes[c.codes[i]]))
		}
	default:
		for j, i := 0, lo; i < hi; j, i = j+1, i+1 {
			dst[j] = mix64(dst[j], hashCellKey(c.value(i)))
		}
	}
}

// hashKeyRange computes composite key hashes for rows [lo,hi) over the
// given column slots, writing into dst (resliced to hi-lo).
func (vd *vecData) hashKeyRange(dst []uint64, slots []int, lo, hi int) []uint64 {
	dst = dst[:0]
	for i := lo; i < hi; i++ {
		dst = append(dst, hashOffset64)
	}
	for _, s := range slots {
		vd.cols[s].hashColRange(dst, lo, hi)
	}
	return dst
}

// keyEqAt reports Value.Key() equivalence of two vector rows projected on
// paired column slots.
func keyEqAt(a *vecData, ai int, aSlots []int, b *vecData, bi int, bSlots []int) bool {
	for k := range aSlots {
		if !a.cols[aSlots[k]].value(ai).keyEq(b.cols[bSlots[k]].value(bi)) {
			return false
		}
	}
	return true
}

// hasNullKey reports whether row i is NULL in any of the key slots.
func (vd *vecData) hasNullKey(i int, slots []int) bool {
	for _, s := range slots {
		if vd.cols[s].nulls.get(i) {
			return true
		}
	}
	return false
}

// ---- gathering ----------------------------------------------------------

// vecBuilder accumulates output rows of a batch operator column by column.
// Gathers are type-specialized appends; string columns copy codes and share
// the source dictionary. A builder's columns all gather from the same
// source relation (possibly one side of a join).
type vecBuilder struct {
	cols []colvec
	n    int
}

func newVecBuilder(src []colvec) *vecBuilder {
	b := &vecBuilder{cols: make([]colvec, len(src))}
	for i := range src {
		b.cols[i] = colvec{kind: src[i].kind, dict: src[i].dict}
	}
	return b
}

// reserve pre-sizes every column's typed array for n total rows, so the
// gathers that follow append without growth reallocation. Callers that
// accumulate the full survivor selection before gathering pay exactly one
// allocation per column — and none at all for an empty selection, which
// the degenerate single-row arms of an OBDA unfolding hit constantly.
func (b *vecBuilder) reserve(n int) {
	if n <= 0 {
		return
	}
	for ci := range b.cols {
		dc := &b.cols[ci]
		switch dc.kind {
		case KindInt, KindBool, KindDate:
			if cap(dc.ints) < n {
				dc.ints = append(make([]int64, 0, n), dc.ints...)
			}
		case KindFloat:
			if cap(dc.floats) < n {
				dc.floats = append(make([]float64, 0, n), dc.floats...)
			}
		case KindString:
			if cap(dc.codes) < n {
				dc.codes = append(make([]uint32, 0, n), dc.codes...)
			}
		case KindGeometry:
			if cap(dc.geos) < n {
				dc.geos = append(make([]*Geometry, 0, n), dc.geos...)
			}
		}
	}
}

// gather appends the given source rows (by index) of src to the builder.
// src must have the column layout the builder was created from.
func (b *vecBuilder) gather(src []colvec, idx []int32) {
	base := b.n
	for ci := range b.cols {
		sc := &src[ci]
		dc := &b.cols[ci]
		anyNull := false
		if sc.nulls != nil {
			for _, i := range idx {
				if sc.nulls.get(int(i)) {
					anyNull = true
					break
				}
			}
		}
		if anyNull && dc.nulls == nil {
			dc.nulls = newNullBitmap(base + len(idx))
		}
		if dc.nulls != nil {
			// Keep the bitmap sized to the column (reallocate by words).
			need := (base + len(idx) + 63) >> 6
			for len(dc.nulls) < need {
				dc.nulls = append(dc.nulls, 0)
			}
		}
		switch dc.kind {
		case KindInt, KindBool, KindDate:
			for k, i := range idx {
				if sc.nulls.get(int(i)) {
					dc.nulls.set(base + k)
					dc.ints = append(dc.ints, 0)
					continue
				}
				dc.ints = append(dc.ints, sc.ints[i])
			}
		case KindFloat:
			for k, i := range idx {
				if sc.nulls.get(int(i)) {
					dc.nulls.set(base + k)
					dc.floats = append(dc.floats, 0)
					continue
				}
				dc.floats = append(dc.floats, sc.floats[i])
			}
		case KindString:
			for k, i := range idx {
				if sc.nulls.get(int(i)) {
					dc.nulls.set(base + k)
					dc.codes = append(dc.codes, 0)
					continue
				}
				dc.codes = append(dc.codes, sc.codes[i])
			}
		case KindGeometry:
			for k, i := range idx {
				if sc.nulls.get(int(i)) {
					dc.nulls.set(base + k)
					dc.geos = append(dc.geos, nil)
					continue
				}
				dc.geos = append(dc.geos, sc.geos[i])
			}
		default:
			// KindNull column (e.g. a vector of all NULLs): nothing typed
			// to copy; the bitmap rows appended below are all NULL.
			if dc.nulls == nil {
				dc.nulls = newNullBitmap(base + len(idx))
			}
			need := (base + len(idx) + 63) >> 6
			for len(dc.nulls) < need {
				dc.nulls = append(dc.nulls, 0)
			}
			for k := range idx {
				dc.nulls.set(base + k)
			}
		}
	}
	b.n += len(idx)
}

// appendAll concatenates another builder's columns (used to merge the
// per-task outputs of parallel batch operators in task order).
func (b *vecBuilder) appendAll(o *vecBuilder) {
	base := b.n
	for ci := range b.cols {
		dc := &b.cols[ci]
		oc := &o.cols[ci]
		if oc.nulls != nil || dc.nulls != nil {
			need := (base + o.n + 63) >> 6
			if dc.nulls == nil {
				dc.nulls = newNullBitmap(base + o.n)
			}
			for len(dc.nulls) < need {
				dc.nulls = append(dc.nulls, 0)
			}
			for i := 0; i < o.n; i++ {
				if oc.nulls.get(i) {
					dc.nulls.set(base + i)
				}
			}
		}
		dc.ints = append(dc.ints, oc.ints...)
		dc.floats = append(dc.floats, oc.floats...)
		dc.codes = append(dc.codes, oc.codes...)
		dc.geos = append(dc.geos, oc.geos...)
	}
	b.n += o.n
}

// build finalizes the builder into a vecData.
func (b *vecBuilder) build() *vecData {
	return &vecData{n: b.n, cols: b.cols}
}

// ---- relation bridging ---------------------------------------------------

// numRows returns the relation's cardinality from whichever backing it has.
func (r *relation) numRows() int {
	if r.rows != nil || r.vec == nil {
		return len(r.rows)
	}
	return r.vec.n
}

// matRows returns the relation's rows, materializing them from the vector
// backing on first use (and caching the result). Base-table scans carry
// both backings from the start, so this is free on the scan fast path;
// relations are owned by one goroutine at a time, matching the executor's
// materialized-operator discipline.
func (r *relation) matRows() []Row {
	if r.rows != nil || r.vec == nil || r.mat {
		return r.rows
	}
	r.rows = r.vec.materializeRows()
	r.mat = true
	return r.rows
}
