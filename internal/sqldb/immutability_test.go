package sqldb

import (
	"sync"
	"testing"
)

// Cached, shared query plans mean the same base table can be scanned by
// many executions at once; the star fast path returns a relation whose row
// slice aliases table storage, so any in-place reordering or append into
// that slice would corrupt the table for everyone. These tests pin the
// copy-before-mutate behavior; the ci.sh -race run makes the concurrent
// variant a real race detector.

func baseRowsSnapshot(t *testing.T, db *Database, table string) []string {
	t.Helper()
	tab := db.Table(table)
	if tab == nil {
		t.Fatalf("no table %s", table)
	}
	out := make([]string, len(tab.Rows))
	for i, r := range tab.Rows {
		s := ""
		for j, v := range r {
			if j > 0 {
				s += "|"
			}
			s += v.String()
		}
		out[i] = s
	}
	return out
}

func TestOrderByDoesNotReorderBaseTable(t *testing.T) {
	db := testDB(t, ProfileHashJoin)
	before := baseRowsSnapshot(t, db, "TProduct")
	if _, err := db.Query("SELECT * FROM TProduct ORDER BY size, product"); err != nil {
		t.Fatal(err)
	}
	after := baseRowsSnapshot(t, db, "TProduct")
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("ORDER BY reordered base-table storage: row %d was %q, now %q", i, before[i], after[i])
		}
	}
}

func TestUnionDoesNotGrowBaseTable(t *testing.T) {
	db := testDB(t, ProfileHashJoin)
	before := baseRowsSnapshot(t, db, "TEmployee")
	res, err := db.Query("SELECT * FROM TEmployee UNION ALL SELECT * FROM TEmployee")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2*len(before) {
		t.Fatalf("union rows = %d, want %d", len(res.Rows), 2*len(before))
	}
	after := baseRowsSnapshot(t, db, "TEmployee")
	if len(after) != len(before) {
		t.Fatalf("union grew the base table: %d -> %d rows", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("union mutated base-table row %d: %q -> %q", i, before[i], after[i])
		}
	}
}

func TestConcurrentSelectsShareBaseTables(t *testing.T) {
	db := testDB(t, ProfileHashJoin)
	queries := []string{
		"SELECT * FROM TProduct ORDER BY size, product",
		"SELECT * FROM TProduct UNION ALL SELECT * FROM TProduct",
		"SELECT * FROM TEmployee ORDER BY name DESC",
		"SELECT product FROM TProduct WHERE size = 'big'",
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := db.Query(queries[(g+i)%len(queries)]); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	rows := baseRowsSnapshot(t, db, "TProduct")
	if len(rows) != 4 || rows[0] != "p1|big" {
		t.Fatalf("concurrent reads corrupted TProduct: %v", rows)
	}
}
