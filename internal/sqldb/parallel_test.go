package sqldb

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// parTestDB builds an instance big enough to cross every parallel
// threshold: nums (6000 rows) and other (4000 rows).
func parTestDB(t testing.TB, profile Profile) *Database {
	t.Helper()
	db := NewDatabase("par")
	db.Profile = profile
	if _, err := db.CreateTable(&TableDef{
		Name: "nums",
		Columns: []Column{
			{Name: "id", Type: TInt, NotNull: true},
			{Name: "val", Type: TInt},
			{Name: "grp", Type: TText},
		},
		PrimaryKey: []int{0},
	}); err != nil {
		t.Fatalf("create nums: %v", err)
	}
	if _, err := db.CreateTable(&TableDef{
		Name: "other",
		Columns: []Column{
			{Name: "id", Type: TInt, NotNull: true},
			{Name: "tag", Type: TText},
		},
		PrimaryKey: []int{0},
	}); err != nil {
		t.Fatalf("create other: %v", err)
	}
	for i := 0; i < 6000; i++ {
		row := Row{NewInt(int64(i)), NewInt(int64((i * 37) % 1000)), NewString("g" + strconv.Itoa(i%5))}
		if err := db.InsertUnchecked("nums", row); err != nil {
			t.Fatalf("insert nums: %v", err)
		}
	}
	for i := 0; i < 4000; i++ {
		row := Row{NewInt(int64(i * 2)), NewString("t" + strconv.Itoa(i%7))}
		if err := db.InsertUnchecked("other", row); err != nil {
			t.Fatalf("insert other: %v", err)
		}
	}
	return db
}

// renderResult is an order-sensitive rendering: two results render equal
// exactly when they are bit-identical (same columns, same rows, same
// order).
func renderResult(res *Result) string {
	var sb strings.Builder
	sb.WriteString(strings.Join(res.Columns, ","))
	sb.WriteByte('\n')
	for _, row := range res.Rows {
		for _, v := range row {
			sb.WriteString(v.Key())
			sb.WriteByte('|')
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// parallelQueries covers every parallel operator and the determinism-
// sensitive shapes: morsel filters, partitioned hash joins, union-arm
// fan-out, UNION dedup, ORDER BY and LIMIT.
var parallelQueries = []string{
	`SELECT id, val FROM nums WHERE val < 500 AND grp = 'g1'`,
	`SELECT n.id, n.grp, o.tag FROM nums n, other o WHERE n.id = o.id AND n.val < 800`,
	`SELECT id FROM nums WHERE val < 300 UNION ALL SELECT id FROM other WHERE id < 4000 UNION ALL SELECT id FROM nums WHERE grp = 'g2'`,
	`SELECT grp FROM nums WHERE val < 900 UNION SELECT tag FROM other WHERE id < 2000`,
	`SELECT id, val FROM nums WHERE grp = 'g3' ORDER BY val DESC, id LIMIT 50`,
	`SELECT n.grp, o.tag FROM nums n, other o WHERE n.id = o.id UNION SELECT grp, 'x' FROM nums WHERE val < 100 ORDER BY 1`,
}

func TestParallelMatchesSequential(t *testing.T) {
	for _, profile := range []Profile{ProfileHashJoin, ProfileSortMerge} {
		db := parTestDB(t, profile)
		for _, q := range parallelQueries {
			stmt, err := Parse(q)
			if err != nil {
				t.Fatalf("%s [%s]: parse: %v", q, profile, err)
			}
			seq, err := db.ExecSelect(stmt)
			if err != nil {
				t.Fatalf("%s [%s]: sequential: %v", q, profile, err)
			}
			var stats ExecStats
			par, err := db.ExecSelectOpts(stmt, ExecOptions{Parallelism: 4, Stats: &stats})
			if err != nil {
				t.Fatalf("%s [%s]: parallel: %v", q, profile, err)
			}
			if got, want := renderResult(par), renderResult(seq); got != want {
				t.Errorf("%s [%s]: parallel result differs from sequential\nparallel:\n%s\nsequential:\n%s", q, profile, got, want)
			}
			if stats.Tasks.Load() == 0 {
				t.Errorf("%s [%s]: expected parallel tasks, got none", q, profile)
			}
		}
	}
}

func TestParallelJoinUsesPartitions(t *testing.T) {
	db := parTestDB(t, ProfileHashJoin)
	stmt, err := Parse(`SELECT n.id FROM nums n, other o WHERE n.id = o.id`)
	if err != nil {
		t.Fatal(err)
	}
	var stats ExecStats
	if _, err := db.ExecSelectOpts(stmt, ExecOptions{Parallelism: 4, Stats: &stats}); err != nil {
		t.Fatal(err)
	}
	if stats.JoinPartitions.Load() == 0 {
		t.Error("expected partitioned hash join, got no partitions")
	}
	if stats.Morsels.Load() == 0 {
		t.Error("expected morsel-parallel probe, got no morsels")
	}
}

func TestParallelUnionCountsArms(t *testing.T) {
	db := parTestDB(t, ProfileHashJoin)
	stmt, err := Parse(`SELECT id FROM nums WHERE val < 10 UNION ALL SELECT id FROM nums WHERE val < 20 UNION ALL SELECT id FROM nums WHERE val < 30`)
	if err != nil {
		t.Fatal(err)
	}
	var stats ExecStats
	if _, err := db.ExecSelectOpts(stmt, ExecOptions{Parallelism: 4, Stats: &stats}); err != nil {
		t.Fatal(err)
	}
	if got := stats.UnionArms.Load(); got != 3 {
		t.Errorf("UnionArms = %d, want 3", got)
	}
}

// TestParallelSharedPool runs many statements against one shared pool to
// exercise the cross-statement helper accounting (tokens must never leak:
// later statements still get helpers).
func TestParallelSharedPool(t *testing.T) {
	db := parTestDB(t, ProfileHashJoin)
	pool := NewPool(4)
	stmt, err := Parse(`SELECT id FROM nums WHERE val < 400 UNION ALL SELECT id FROM other WHERE id < 3000`)
	if err != nil {
		t.Fatal(err)
	}
	want := ""
	for i := 0; i < 20; i++ {
		var stats ExecStats
		res, err := db.ExecSelectOpts(stmt, ExecOptions{Parallelism: 4, Pool: pool, Stats: &stats})
		if err != nil {
			t.Fatal(err)
		}
		got := renderResult(res)
		if want == "" {
			want = got
		} else if got != want {
			t.Fatalf("iteration %d: result changed across executions", i)
		}
		if stats.Workers.Load() == 0 {
			t.Fatalf("iteration %d: pool lent no helpers (token leak?)", i)
		}
	}
}

// TestParStateDeterministicError checks first-error propagation: whatever
// the scheduling, run reports the failing task with the lowest index — the
// error sequential execution would hit first.
func TestParStateDeterministicError(t *testing.T) {
	pool := NewPool(4)
	ps := &parState{pool: pool, par: 4, stats: &ExecStats{}}
	errAt := func(i int) error { return fmt.Errorf("task %d failed", i) }
	for trial := 0; trial < 100; trial++ {
		_, err := ps.run(64, func(i int) error {
			if i == 17 || i == 53 {
				return errAt(i)
			}
			return nil
		})
		if err == nil || err.Error() != "task 17 failed" {
			t.Fatalf("trial %d: err = %v, want task 17's error", trial, err)
		}
	}
}

// TestParStateNestedNoDeadlock nests parallel drivers deeper than the pool
// has helpers; the non-blocking borrow rule means the callers always make
// progress alone.
func TestParStateNestedNoDeadlock(t *testing.T) {
	pool := NewPool(2) // one helper total
	ps := &parState{pool: pool, par: 2, stats: &ExecStats{}}
	_, err := ps.run(8, func(i int) error {
		_, innerErr := ps.run(8, func(j int) error {
			_, deepest := ps.run(4, func(k int) error { return nil })
			return deepest
		})
		return innerErr
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestParStateRunCoversAllTasks(t *testing.T) {
	pool := NewPool(4)
	ps := &parState{pool: pool, par: 4, stats: &ExecStats{}}
	hit := make([]bool, 500)
	if _, err := ps.run(len(hit), func(i int) error {
		hit[i] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, h := range hit {
		if !h {
			t.Fatalf("task %d never ran", i)
		}
	}
}

func TestPoolTryAcquireBounded(t *testing.T) {
	pool := NewPool(4) // 3 helpers
	if got := pool.tryAcquire(10); got != 3 {
		t.Fatalf("tryAcquire(10) = %d, want 3", got)
	}
	if got := pool.tryAcquire(1); got != 0 {
		t.Fatalf("drained pool lent %d helpers", got)
	}
	pool.release(3)
	if got := pool.tryAcquire(2); got != 2 {
		t.Fatalf("tryAcquire(2) after release = %d, want 2", got)
	}
	pool.release(2)
}

// TestDistinctKeySemantics pins the hash-based dedup to RowKey semantics:
// values that Key() identifies (int 2 and float 2.0) must still collapse,
// values it distinguishes must survive.
func TestDistinctKeySemantics(t *testing.T) {
	r := &relation{
		cols: []colMeta{{name: "v"}},
		rows: []Row{
			{NewInt(2)},
			{NewFloat(2.0)}, // integral float: same key class as int 2
			{NewFloat(2.5)},
			{NewString("2")}, // string "2" is not int 2
			{Value{}},        // NULL
			{Value{}},
			{NewBool(true)},
			{NewInt(2)},
		},
	}
	kept := distinctRows(r).rows
	want := make(map[string]bool)
	var wantOrder []string
	for _, row := range r.rows {
		k := RowKey(row, []int{0})
		if !want[k] {
			want[k] = true
			wantOrder = append(wantOrder, k)
		}
	}
	if len(kept) != len(wantOrder) {
		t.Fatalf("distinctRows kept %d rows, want %d", len(kept), len(wantOrder))
	}
	for i, row := range kept {
		if got := RowKey(row, []int{0}); got != wantOrder[i] {
			t.Errorf("row %d: key %q, want %q", i, got, wantOrder[i])
		}
	}
}

func TestExecStatsAdd(t *testing.T) {
	var a, b ExecStats
	a.Tasks.Add(3)
	b.Tasks.Add(4)
	b.UnionArms.Add(2)
	a.Add(&b)
	if got := a.Tasks.Load(); got != 7 {
		t.Errorf("Tasks = %d, want 7", got)
	}
	if got := a.UnionArms.Load(); got != 2 {
		t.Errorf("UnionArms = %d, want 2", got)
	}
	a.Add(nil) // nil-safe
}

// TestParallelProfileAnnotations checks EXPLAIN ANALYZE stays truthful
// under parallel execution: per-arm nodes with timings and a workers=
// annotation on the union.
func TestParallelProfileAnnotations(t *testing.T) {
	db := parTestDB(t, ProfileHashJoin)
	stmt, err := Parse(`SELECT id FROM nums WHERE val < 300 UNION ALL SELECT id FROM other WHERE id < 3000`)
	if err != nil {
		t.Fatal(err)
	}
	res, prof, err := db.ProfileSelectOpts(stmt, ExecOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := db.ExecSelect(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if renderResult(res) != renderResult(seq) {
		t.Error("profiled parallel result differs from sequential")
	}
	union := prof.Find("union all")
	if union == nil {
		t.Fatal("no union node in profile")
	}
	if !strings.Contains(union.Detail, "workers=") {
		t.Errorf("union detail %q lacks workers annotation", union.Detail)
	}
	arm := prof.Find("arm")
	if arm == nil {
		t.Fatal("no per-arm node in profile")
	}
	if arm.Rows == 0 {
		t.Error("arm node has no row count")
	}
}

// TestParallelErrorPropagation runs a failing statement in parallel and
// checks the error matches the sequential one.
func TestParallelErrorPropagation(t *testing.T) {
	db := parTestDB(t, ProfileHashJoin)
	// Arm 2 has mismatched arity: both modes must report the same error.
	stmt, err := Parse(`SELECT id FROM nums WHERE val < 100 UNION ALL SELECT id, val FROM nums WHERE val < 200`)
	if err != nil {
		t.Fatal(err)
	}
	_, seqErr := db.ExecSelect(stmt)
	_, parErr := db.ExecSelectOpts(stmt, ExecOptions{Parallelism: 4})
	if seqErr == nil || parErr == nil {
		t.Fatalf("expected errors, got seq=%v par=%v", seqErr, parErr)
	}
	if seqErr.Error() != parErr.Error() {
		t.Errorf("parallel error %q differs from sequential %q", parErr, seqErr)
	}
}

// legacyDistinctRows is the pre-optimization implementation (per-row key
// strings through RowKey): kept as the BenchmarkDistinct baseline.
func legacyDistinctRows(r *relation) *relation {
	out := &relation{cols: r.cols, rows: make([]Row, 0, len(r.rows))}
	all := make([]int, len(r.cols))
	for i := range all {
		all[i] = i
	}
	seen := make(map[string]bool, len(r.rows))
	for _, row := range r.rows {
		k := RowKey(row, all)
		if seen[k] {
			continue
		}
		seen[k] = true
		out.rows = append(out.rows, row)
	}
	return out
}

func benchRelation() *relation {
	r := &relation{cols: []colMeta{{name: "a"}, {name: "b"}, {name: "c"}}}
	for i := 0; i < 8192; i++ {
		r.rows = append(r.rows, Row{
			NewInt(int64(i % 1024)),
			NewString("value-" + strconv.Itoa(i%512)),
			NewFloat(float64(i%256) + 0.5),
		})
	}
	return r
}

// BenchmarkDistinct compares the dedup path before (string keys) and after
// (reusable byte buffer + hash) the allocation rework.
func BenchmarkDistinct(b *testing.B) {
	r := benchRelation()
	b.Run("before-string-keys", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			legacyDistinctRows(r)
		}
	})
	b.Run("after-hash-buffer", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			distinctRows(r)
		}
	})
	if len(legacyDistinctRows(r).rows) != len(distinctRows(r).rows) {
		b.Fatal("implementations disagree")
	}
}
