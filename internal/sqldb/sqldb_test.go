package sqldb

import (
	"strings"
	"testing"
	"testing/quick"
)

// testDB builds the running example of the paper (Sect. 4, Example 4.1):
// TEmployee, TAssignment, TSellsProduct, TProduct.
func testDB(t *testing.T, profile Profile) *Database {
	t.Helper()
	db := NewDatabase("example")
	db.Profile = profile
	mustCreate := func(def *TableDef) {
		t.Helper()
		if _, err := db.CreateTable(def); err != nil {
			t.Fatalf("create %s: %v", def.Name, err)
		}
	}
	mustCreate(&TableDef{
		Name: "TEmployee",
		Columns: []Column{
			{Name: "id", Type: TInt, NotNull: true},
			{Name: "name", Type: TText},
			{Name: "branch", Type: TText},
		},
		PrimaryKey: []int{0},
	})
	mustCreate(&TableDef{
		Name: "TProduct",
		Columns: []Column{
			{Name: "product", Type: TText, NotNull: true},
			{Name: "size", Type: TText},
		},
		PrimaryKey: []int{0},
	})
	mustCreate(&TableDef{
		Name: "TAssignment",
		Columns: []Column{
			{Name: "branch", Type: TText, NotNull: true},
			{Name: "task", Type: TText, NotNull: true},
		},
		PrimaryKey: []int{0, 1},
	})
	mustCreate(&TableDef{
		Name: "TSellsProduct",
		Columns: []Column{
			{Name: "id", Type: TInt, NotNull: true},
			{Name: "product", Type: TText, NotNull: true},
		},
		PrimaryKey: []int{0, 1},
		ForeignKeys: []ForeignKey{
			{Columns: []int{0}, RefTable: "TEmployee", RefColumns: []int{0}},
			{Columns: []int{1}, RefTable: "TProduct", RefColumns: []int{0}},
		},
	})
	ins := func(table string, rows ...Row) {
		t.Helper()
		for _, r := range rows {
			if err := db.Insert(table, r); err != nil {
				t.Fatalf("insert into %s: %v", table, err)
			}
		}
	}
	ins("TEmployee",
		Row{NewInt(1), NewString("John"), NewString("B1")},
		Row{NewInt(2), NewString("Lisa"), NewString("B1")},
		Row{NewInt(3), NewString("Mara"), NewString("B2")},
	)
	ins("TProduct",
		Row{NewString("p1"), NewString("big")},
		Row{NewString("p2"), NewString("big")},
		Row{NewString("p3"), NewString("small")},
		Row{NewString("p4"), NewString("big")},
	)
	ins("TAssignment",
		Row{NewString("B1"), NewString("task1")},
		Row{NewString("B1"), NewString("task2")},
		Row{NewString("B2"), NewString("task1")},
		Row{NewString("B2"), NewString("task2")},
	)
	ins("TSellsProduct",
		Row{NewInt(1), NewString("p1")},
		Row{NewInt(1), NewString("p2")},
		Row{NewInt(2), NewString("p2")},
		Row{NewInt(2), NewString("p3")},
	)
	return db
}

func queryStrings(t *testing.T, db *Database, sql string) []string {
	t.Helper()
	res, err := db.Query(sql)
	if err != nil {
		t.Fatalf("query %q: %v", sql, err)
	}
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = v.String()
		}
		out[i] = strings.Join(parts, "|")
	}
	return out
}

func TestSimpleSelect(t *testing.T) {
	db := testDB(t, ProfileHashJoin)
	rows := queryStrings(t, db, "SELECT name FROM TEmployee WHERE branch = 'B1' ORDER BY name")
	want := []string{"John", "Lisa"}
	if len(rows) != 2 || rows[0] != want[0] || rows[1] != want[1] {
		t.Fatalf("got %v, want %v", rows, want)
	}
}

func TestProjectionStar(t *testing.T) {
	db := testDB(t, ProfileHashJoin)
	res, err := db.Query("SELECT * FROM TEmployee")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 3 || len(res.Rows) != 3 {
		t.Fatalf("got %d cols %d rows", len(res.Columns), len(res.Rows))
	}
	if res.Columns[0] != "id" || res.Columns[2] != "branch" {
		t.Fatalf("bad columns %v", res.Columns)
	}
}

func TestJoinBothProfiles(t *testing.T) {
	for _, prof := range []Profile{ProfileHashJoin, ProfileSortMerge} {
		db := testDB(t, prof)
		rows := queryStrings(t, db,
			"SELECT e.name, p.size FROM TEmployee e JOIN TSellsProduct s ON e.id = s.id JOIN TProduct p ON s.product = p.product ORDER BY e.name, p.size")
		if len(rows) != 4 {
			t.Fatalf("%v: got %d rows: %v", prof, len(rows), rows)
		}
		if rows[0] != "John|big" {
			t.Fatalf("%v: first row %q", prof, rows[0])
		}
	}
}

func TestCommaJoinWithWhere(t *testing.T) {
	// The OBDA unfolder emits this shape; the planner must recognize the
	// equi predicates rather than building a cross product.
	for _, prof := range []Profile{ProfileHashJoin, ProfileSortMerge} {
		db := testDB(t, prof)
		rows := queryStrings(t, db,
			"SELECT e.name FROM TEmployee e, TSellsProduct s, TProduct p WHERE e.id = s.id AND s.product = p.product AND p.size = 'small'")
		if len(rows) != 1 || rows[0] != "Lisa" {
			t.Fatalf("%v: got %v", prof, rows)
		}
	}
}

func TestNaturalJoin(t *testing.T) {
	db := testDB(t, ProfileHashJoin)
	// TEmployee NATURAL JOIN TAssignment joins on branch.
	rows := queryStrings(t, db,
		"SELECT id, task FROM TEmployee NATURAL JOIN TAssignment ORDER BY id, task")
	if len(rows) != 6 {
		t.Fatalf("got %d rows: %v", len(rows), rows)
	}
	if rows[0] != "1|task1" || rows[5] != "3|task2" {
		t.Fatalf("rows %v", rows)
	}
}

func TestLeftJoin(t *testing.T) {
	db := testDB(t, ProfileHashJoin)
	rows := queryStrings(t, db,
		"SELECT e.name, s.product FROM TEmployee e LEFT JOIN TSellsProduct s ON e.id = s.id ORDER BY e.name, s.product")
	// Mara sells nothing -> padded with NULL.
	if len(rows) != 5 {
		t.Fatalf("got %d rows: %v", len(rows), rows)
	}
	found := false
	for _, r := range rows {
		if r == "Mara|NULL" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no NULL-padded row in %v", rows)
	}
}

func TestAggregates(t *testing.T) {
	db := testDB(t, ProfileHashJoin)
	rows := queryStrings(t, db, "SELECT COUNT(*) FROM TSellsProduct")
	if rows[0] != "4" {
		t.Fatalf("count got %v", rows)
	}
	rows = queryStrings(t, db,
		"SELECT branch, COUNT(*) AS n FROM TEmployee GROUP BY branch ORDER BY branch")
	if len(rows) != 2 || rows[0] != "B1|2" || rows[1] != "B2|1" {
		t.Fatalf("group got %v", rows)
	}
	rows = queryStrings(t, db, "SELECT COUNT(DISTINCT size) FROM TProduct")
	if rows[0] != "2" {
		t.Fatalf("count distinct got %v", rows)
	}
	rows = queryStrings(t, db, "SELECT MIN(id), MAX(id), SUM(id), AVG(id) FROM TEmployee")
	if rows[0] != "1|3|6|2" {
		t.Fatalf("min/max/sum/avg got %v", rows)
	}
}

func TestHaving(t *testing.T) {
	db := testDB(t, ProfileHashJoin)
	rows := queryStrings(t, db,
		"SELECT branch, COUNT(*) FROM TEmployee GROUP BY branch HAVING COUNT(*) > 1")
	if len(rows) != 1 || rows[0] != "B1|2" {
		t.Fatalf("having got %v", rows)
	}
}

func TestAggregateEmptyInput(t *testing.T) {
	db := testDB(t, ProfileHashJoin)
	rows := queryStrings(t, db, "SELECT COUNT(*) FROM TEmployee WHERE id > 100")
	if len(rows) != 1 || rows[0] != "0" {
		t.Fatalf("got %v", rows)
	}
	rows = queryStrings(t, db, "SELECT MAX(id) FROM TEmployee WHERE id > 100")
	if len(rows) != 1 || rows[0] != "NULL" {
		t.Fatalf("got %v", rows)
	}
}

func TestUnionAndUnionAll(t *testing.T) {
	db := testDB(t, ProfileHashJoin)
	rows := queryStrings(t, db,
		"SELECT branch FROM TEmployee UNION SELECT branch FROM TAssignment")
	if len(rows) != 2 {
		t.Fatalf("union got %v", rows)
	}
	rows = queryStrings(t, db,
		"SELECT branch FROM TEmployee UNION ALL SELECT branch FROM TAssignment")
	if len(rows) != 7 {
		t.Fatalf("union all got %v", rows)
	}
}

func TestDistinct(t *testing.T) {
	db := testDB(t, ProfileHashJoin)
	rows := queryStrings(t, db, "SELECT DISTINCT size FROM TProduct ORDER BY size")
	if len(rows) != 2 || rows[0] != "big" || rows[1] != "small" {
		t.Fatalf("distinct got %v", rows)
	}
}

func TestLimitOffset(t *testing.T) {
	db := testDB(t, ProfileHashJoin)
	rows := queryStrings(t, db, "SELECT id FROM TEmployee ORDER BY id LIMIT 1 OFFSET 1")
	if len(rows) != 1 || rows[0] != "2" {
		t.Fatalf("limit/offset got %v", rows)
	}
}

func TestLikeInBetween(t *testing.T) {
	db := testDB(t, ProfileHashJoin)
	rows := queryStrings(t, db, "SELECT name FROM TEmployee WHERE name LIKE 'J%'")
	if len(rows) != 1 || rows[0] != "John" {
		t.Fatalf("like got %v", rows)
	}
	rows = queryStrings(t, db, "SELECT name FROM TEmployee WHERE id IN (1, 3) ORDER BY name")
	if len(rows) != 2 || rows[0] != "John" || rows[1] != "Mara" {
		t.Fatalf("in got %v", rows)
	}
	rows = queryStrings(t, db, "SELECT name FROM TEmployee WHERE id BETWEEN 2 AND 3 ORDER BY id")
	if len(rows) != 2 || rows[0] != "Lisa" {
		t.Fatalf("between got %v", rows)
	}
}

func TestSubquery(t *testing.T) {
	db := testDB(t, ProfileHashJoin)
	rows := queryStrings(t, db,
		"SELECT v.name FROM (SELECT name, id FROM TEmployee WHERE branch = 'B1') AS v WHERE v.id = 2")
	if len(rows) != 1 || rows[0] != "Lisa" {
		t.Fatalf("subquery got %v", rows)
	}
}

func TestIsNull(t *testing.T) {
	db := testDB(t, ProfileHashJoin)
	if err := db.Insert("TEmployee", Row{NewInt(9), Null, NewString("B3")}); err != nil {
		t.Fatal(err)
	}
	rows := queryStrings(t, db, "SELECT id FROM TEmployee WHERE name IS NULL")
	if len(rows) != 1 || rows[0] != "9" {
		t.Fatalf("is null got %v", rows)
	}
	rows = queryStrings(t, db, "SELECT COUNT(name) FROM TEmployee")
	if rows[0] != "3" {
		t.Fatalf("COUNT skips NULL: got %v", rows)
	}
}

func TestPrimaryKeyViolation(t *testing.T) {
	db := testDB(t, ProfileHashJoin)
	err := db.Insert("TEmployee", Row{NewInt(1), NewString("Dup"), NewString("B9")})
	if err == nil {
		t.Fatal("expected duplicate key error")
	}
	if _, ok := err.(*DuplicateKeyError); !ok {
		t.Fatalf("wrong error type %T", err)
	}
}

func TestForeignKeyViolation(t *testing.T) {
	db := testDB(t, ProfileHashJoin)
	err := db.Insert("TSellsProduct", Row{NewInt(77), NewString("p1")})
	if err == nil {
		t.Fatal("expected FK error")
	}
	if _, ok := err.(*ForeignKeyError); !ok {
		t.Fatalf("wrong error type %T", err)
	}
	if errs := db.CheckIntegrity(); len(errs) != 0 {
		t.Fatalf("integrity check reports %v", errs)
	}
}

func TestTypeMismatch(t *testing.T) {
	db := testDB(t, ProfileHashJoin)
	if err := db.Insert("TEmployee", Row{NewString("x"), Null, Null}); err == nil {
		t.Fatal("expected type error")
	}
}

func TestStatsDuplicateRatio(t *testing.T) {
	db := testDB(t, ProfileHashJoin)
	st := db.Table("TAssignment").Stats()
	// branch column: 4 values, 2 distinct -> ratio 1/2 (the paper's example).
	if got := st.DuplicateRatio(0); got != 0.5 {
		t.Fatalf("duplicate ratio = %v, want 0.5", got)
	}
	if got := st.DuplicateRatio(1); got != 0.5 {
		t.Fatalf("task duplicate ratio = %v, want 0.5", got)
	}
	if st.Min[0].String() != "B1" || st.Max[0].String() != "B2" {
		t.Fatalf("min/max wrong: %v %v", st.Min[0], st.Max[0])
	}
}

func TestProfilesAgree(t *testing.T) {
	// Property: both profiles must return the same multiset of rows.
	queries := []string{
		"SELECT e.name, p.size FROM TEmployee e JOIN TSellsProduct s ON e.id = s.id JOIN TProduct p ON s.product = p.product",
		"SELECT e.name FROM TEmployee e, TSellsProduct s WHERE e.id = s.id",
		"SELECT branch, COUNT(*) FROM TEmployee GROUP BY branch",
		"SELECT id, task FROM TEmployee NATURAL JOIN TAssignment",
		"SELECT e.name, s.product FROM TEmployee e LEFT JOIN TSellsProduct s ON e.id = s.id",
	}
	h := testDB(t, ProfileHashJoin)
	m := testDB(t, ProfileSortMerge)
	for _, q := range queries {
		rh, err := h.Query(q)
		if err != nil {
			t.Fatalf("hash %q: %v", q, err)
		}
		rm, err := m.Query(q)
		if err != nil {
			t.Fatalf("merge %q: %v", q, err)
		}
		fh := relationFingerprint(&relation{rows: rh.Rows})
		fm := relationFingerprint(&relation{rows: rm.Rows})
		if fh != fm {
			t.Fatalf("profiles disagree on %q:\n%s\nvs\n%s", q, fh, fm)
		}
	}
}

func TestDateRoundTrip(t *testing.T) {
	f := func(days int32) bool {
		d := int64(days)
		y, m, dd := civilFromDays(d)
		return daysFromCivil(y, m, dd) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	v, err := ParseDate("2008-06-15")
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "2008-06-15" {
		t.Fatalf("date round trip got %s", v)
	}
}

func TestCompareTotalOrderOnInts(t *testing.T) {
	f := func(a, b int64) bool {
		c1, err1 := Compare(NewInt(a), NewInt(b))
		c2, err2 := Compare(NewInt(b), NewInt(a))
		if err1 != nil || err2 != nil {
			return false
		}
		return c1 == -c2 && ((a == b) == (c1 == 0))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNumericCrossKindCompare(t *testing.T) {
	c, err := Compare(NewInt(2), NewFloat(2.0))
	if err != nil || c != 0 {
		t.Fatalf("2 = 2.0 expected, got %d %v", c, err)
	}
	if NewInt(2).Key() != NewFloat(2.0).Key() {
		t.Fatal("keys of equal numerics must agree")
	}
}

func TestLikeMatchProperties(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "h_llo", true},
		{"hello", "H%", true}, // case-insensitive like MySQL
		{"hello", "x%", false},
		{"", "%", true},
		{"", "_", false},
		{"abc", "%b%", true},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q,%q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

func TestGeometryValidity(t *testing.T) {
	square := &Geometry{Points: []Point{{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0, 0}}}
	if !square.Valid() {
		t.Fatal("square should be valid")
	}
	bowtie := &Geometry{Points: []Point{{0, 0}, {1, 1}, {1, 0}, {0, 1}, {0, 0}}}
	if bowtie.Valid() {
		t.Fatal("self-intersecting polygon should be invalid")
	}
	open := &Geometry{Points: []Point{{0, 0}, {1, 0}, {1, 1}}}
	if open.Valid() {
		t.Fatal("open ring should be invalid")
	}
	minX, minY, maxX, maxY := square.BoundingBox()
	if minX != 0 || minY != 0 || maxX != 1 || maxY != 1 {
		t.Fatalf("bbox got %v %v %v %v", minX, minY, maxX, maxY)
	}
}

func TestGeometryColumnRejectsInvalid(t *testing.T) {
	db := NewDatabase("g")
	if _, err := db.CreateTable(&TableDef{
		Name:    "shapes",
		Columns: []Column{{Name: "area", Type: TGeometry}},
	}); err != nil {
		t.Fatal(err)
	}
	bowtie := &Geometry{Points: []Point{{0, 0}, {1, 1}, {1, 0}, {0, 1}, {0, 0}}}
	if err := db.Insert("shapes", Row{NewGeometry(bowtie)}); err == nil {
		t.Fatal("invalid polygon must be rejected")
	}
	square := &Geometry{Points: []Point{{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0, 0}}}
	if err := db.Insert("shapes", Row{NewGeometry(square)}); err != nil {
		t.Fatal(err)
	}
}

func TestParserErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t LIMIT x",
		"SELECT 'unterminated FROM t",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("expected parse error for %q", q)
		}
	}
}

func TestSQLRoundTrip(t *testing.T) {
	// Statements must survive a parse -> String -> parse cycle.
	queries := []string{
		"SELECT id, name FROM TEmployee WHERE branch = 'B1' ORDER BY name LIMIT 2",
		"SELECT e.name FROM TEmployee AS e JOIN TSellsProduct AS s ON e.id = s.id",
		"SELECT branch, COUNT(*) AS n FROM TEmployee GROUP BY branch HAVING COUNT(*) > 1",
		"SELECT branch FROM TEmployee UNION SELECT branch FROM TAssignment",
		"SELECT DISTINCT size FROM TProduct",
	}
	for _, q := range queries {
		s1, err := Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		s2, err := Parse(s1.String())
		if err != nil {
			t.Fatalf("reparse %q -> %q: %v", q, s1.String(), err)
		}
		if s1.String() != s2.String() {
			t.Fatalf("round trip mismatch:\n%s\n%s", s1, s2)
		}
	}
}

func TestSQLMetrics(t *testing.T) {
	s := MustParse("SELECT e.name FROM TEmployee e JOIN TSellsProduct s ON e.id = s.id LEFT JOIN TProduct p ON s.product = p.product")
	m := s.Metrics()
	if m.Joins != 1 || m.LeftJoins != 1 {
		t.Fatalf("metrics %+v", m)
	}
	u := MustParse("SELECT id FROM TEmployee UNION ALL SELECT id FROM TEmployee UNION ALL SELECT id FROM TEmployee")
	if got := u.Metrics().Unions; got != 2 {
		t.Fatalf("unions = %d", got)
	}
}

func TestScalarFunctions(t *testing.T) {
	db := testDB(t, ProfileHashJoin)
	rows := queryStrings(t, db, "SELECT UPPER(name), LENGTH(name) FROM TEmployee WHERE id = 1")
	if rows[0] != "JOHN|4" {
		t.Fatalf("got %v", rows)
	}
	rows = queryStrings(t, db, "SELECT COALESCE(NULL, 'x')")
	if rows[0] != "x" {
		t.Fatalf("coalesce got %v", rows)
	}
	rows = queryStrings(t, db, "SELECT SUBSTR('hello', 2, 3)")
	if rows[0] != "ell" {
		t.Fatalf("substr got %v", rows)
	}
	rows = queryStrings(t, db, "SELECT 'a' || 'b'")
	if rows[0] != "ab" {
		t.Fatalf("concat got %v", rows)
	}
}

func TestThreeValuedLogic(t *testing.T) {
	db := testDB(t, ProfileHashJoin)
	if err := db.Insert("TEmployee", Row{NewInt(10), Null, NewString("B3")}); err != nil {
		t.Fatal(err)
	}
	// name = 'John' is UNKNOWN for the NULL row; it must not be returned,
	// and neither by the negation.
	pos := queryStrings(t, db, "SELECT id FROM TEmployee WHERE name = 'Zed'")
	neg := queryStrings(t, db, "SELECT id FROM TEmployee WHERE NOT (name = 'Zed')")
	if len(pos)+len(neg) != 3 { // 4 employees, 1 has NULL name
		t.Fatalf("3VL violated: pos=%v neg=%v", pos, neg)
	}
}

func TestExplainSelect(t *testing.T) {
	db := testDB(t, ProfileHashJoin)
	stmt := MustParse("SELECT e.name FROM TEmployee e, TSellsProduct s WHERE e.id = s.id AND e.branch = 'B1'")
	notes, err := db.ExplainSelect(stmt)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(notes, "\n")
	if !strings.Contains(joined, "pushdown") {
		t.Fatalf("no pushdown recorded:\n%s", joined)
	}
	if !strings.Contains(joined, "hash join") {
		t.Fatalf("no join algorithm recorded:\n%s", joined)
	}
	if !strings.Contains(joined, "result:") {
		t.Fatalf("no result note:\n%s", joined)
	}
	// sort-merge profile picks the other algorithm
	db2 := testDB(t, ProfileSortMerge)
	notes2, err := db2.ExplainSelect(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(notes2, "\n"), "merge join") {
		t.Fatalf("sort-merge profile did not merge join:\n%v", notes2)
	}
}
