package sqldb

import (
	"fmt"
	"sort"
	"strings"
)

// relation is a materialized intermediate result. Base-table scans share the
// table's row storage (rows are never mutated in place by the executor).
type relation struct {
	cols []colMeta
	rows []Row
}

// filterRelation keeps rows where pred evaluates to TRUE.
func filterRelation(r *relation, pred Expr) (*relation, error) {
	f, err := bindExpr(pred, r.cols)
	if err != nil {
		return nil, err
	}
	out := &relation{cols: r.cols}
	for _, row := range r.rows {
		v, err := f(row)
		if err != nil {
			return nil, err
		}
		if !v.IsNull() && v.Bool() {
			out.rows = append(out.rows, row)
		}
	}
	return out, nil
}

func concatRows(a, b Row) Row {
	out := make(Row, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	return out
}

// equiKey describes one equality column pair between two relations.
type equiKey struct {
	lSlot, rSlot int
}

// extractEquiKeys splits conjuncts into equi-join keys between l and r and
// residual predicates. Conjuncts referring only to one side are also
// returned as residual (callers push those down before joining).
func extractEquiKeys(conjuncts []Expr, l, r *relation) (keys []equiKey, residual []Expr) {
	for _, c := range conjuncts {
		if b, ok := c.(*BinOp); ok && b.Op == OpEq {
			lc, lok := b.L.(*ColRef)
			rc, rok := b.R.(*ColRef)
			if lok && rok {
				ls := findCol(l.cols, lc.Table, lc.Name)
				rs := findCol(r.cols, rc.Table, rc.Name)
				if ls >= 0 && rs >= 0 && findCol(r.cols, lc.Table, lc.Name) < 0 && findCol(l.cols, rc.Table, rc.Name) < 0 {
					keys = append(keys, equiKey{ls, rs})
					continue
				}
				// try swapped orientation
				ls2 := findCol(l.cols, rc.Table, rc.Name)
				rs2 := findCol(r.cols, lc.Table, lc.Name)
				if ls2 >= 0 && rs2 >= 0 && findCol(r.cols, rc.Table, rc.Name) < 0 && findCol(l.cols, lc.Table, lc.Name) < 0 {
					keys = append(keys, equiKey{ls2, rs2})
					continue
				}
			}
		}
		residual = append(residual, c)
	}
	return keys, residual
}

// splitConjuncts flattens nested ANDs.
func splitConjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*BinOp); ok && b.Op == OpAnd {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []Expr{e}
}

// andAll rebuilds a conjunction (nil for empty input).
func andAll(conjuncts []Expr) Expr {
	var out Expr
	for _, c := range conjuncts {
		if out == nil {
			out = c
		} else {
			out = &BinOp{Op: OpAnd, L: out, R: c}
		}
	}
	return out
}

// hashJoin performs an inner equi-join; residual conjuncts are checked on
// each candidate pair.
func hashJoin(l, r *relation, keys []equiKey, residual Expr) (*relation, error) {
	out := &relation{cols: append(append([]colMeta{}, l.cols...), r.cols...)}
	var resFn evalFn
	if residual != nil {
		var err error
		resFn, err = bindExpr(residual, out.cols)
		if err != nil {
			return nil, err
		}
	}
	// Build on the smaller side.
	build, probe := r, l
	buildRight := true
	if len(l.rows) < len(r.rows) {
		build, probe = l, r
		buildRight = false
	}
	buildCols := make([]int, len(keys))
	probeCols := make([]int, len(keys))
	for i, k := range keys {
		if buildRight {
			buildCols[i], probeCols[i] = k.rSlot, k.lSlot
		} else {
			buildCols[i], probeCols[i] = k.lSlot, k.rSlot
		}
	}
	ht := make(map[string][]Row, len(build.rows))
	for _, row := range build.rows {
		if hasNullAt(row, buildCols) {
			continue
		}
		k := RowKey(row, buildCols)
		ht[k] = append(ht[k], row)
	}
	for _, prow := range probe.rows {
		if hasNullAt(prow, probeCols) {
			continue
		}
		for _, brow := range ht[RowKey(prow, probeCols)] {
			var joined Row
			if buildRight {
				joined = concatRows(prow, brow)
			} else {
				joined = concatRows(brow, prow)
			}
			if resFn != nil {
				v, err := resFn(joined)
				if err != nil {
					return nil, err
				}
				if v.IsNull() || !v.Bool() {
					continue
				}
			}
			out.rows = append(out.rows, joined)
		}
	}
	return out, nil
}

// mergeJoinCtx is mergeJoin with the statement's sort-order cache.
func mergeJoinCtx(ctx *execCtx, l, r *relation, keys []equiKey, residual Expr) (*relation, error) {
	return mergeJoinImpl(ctx, l, r, keys, residual)
}

// mergeJoin sorts both sides on the first key column and merges; remaining
// keys and residual conjuncts are verified per pair. It reproduces the
// "PostgreSQL-like" profile behaviour (sort-merge machinery).
func mergeJoin(l, r *relation, keys []equiKey, residual Expr) (*relation, error) {
	return mergeJoinImpl(nil, l, r, keys, residual)
}

func mergeJoinImpl(ctx *execCtx, l, r *relation, keys []equiKey, residual Expr) (*relation, error) {
	if len(keys) == 0 {
		return nestedLoopJoin(l, r, residual)
	}
	out := &relation{cols: append(append([]colMeta{}, l.cols...), r.cols...)}
	var resFn evalFn
	rest := keys[1:]
	checks := residual
	if residual != nil || len(rest) > 0 {
		var conj []Expr
		if residual != nil {
			conj = append(conj, residual)
		}
		_ = checks
		var err error
		if len(conj) > 0 {
			resFn, err = bindExpr(andAll(conj), out.cols)
			if err != nil {
				return nil, err
			}
		}
	}
	k0 := keys[0]
	var li, ri []int
	if ctx != nil {
		li = ctx.sortedOrder(l, k0.lSlot)
		ri = ctx.sortedOrder(r, k0.rSlot)
	} else {
		li = sortedOrder(l, k0.lSlot)
		ri = sortedOrder(r, k0.rSlot)
	}
	i, j := 0, 0
	for i < len(li) && j < len(ri) {
		lv := l.rows[li[i]][k0.lSlot]
		rv := r.rows[ri[j]][k0.rSlot]
		if lv.IsNull() {
			i++
			continue
		}
		if rv.IsNull() {
			j++
			continue
		}
		c, err := Compare(lv, rv)
		if err != nil {
			return nil, err
		}
		switch {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			// find the equal runs
			i2 := i
			for i2 < len(li) {
				v := l.rows[li[i2]][k0.lSlot]
				if v.IsNull() || !Equal(v, lv) {
					break
				}
				i2++
			}
			j2 := j
			for j2 < len(ri) {
				v := r.rows[ri[j2]][k0.rSlot]
				if v.IsNull() || !Equal(v, rv) {
					break
				}
				j2++
			}
			for a := i; a < i2; a++ {
				for b := j; b < j2; b++ {
					lrow, rrow := l.rows[li[a]], r.rows[ri[b]]
					ok := true
					for _, k := range rest {
						if !Equal(lrow[k.lSlot], rrow[k.rSlot]) {
							ok = false
							break
						}
					}
					if !ok {
						continue
					}
					joined := concatRows(lrow, rrow)
					if resFn != nil {
						v, err := resFn(joined)
						if err != nil {
							return nil, err
						}
						if v.IsNull() || !v.Bool() {
							continue
						}
					}
					out.rows = append(out.rows, joined)
				}
			}
			i, j = i2, j2
		}
	}
	return out, nil
}

func sortedOrder(r *relation, slot int) []int {
	idx := make([]int, len(r.rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		c, err := Compare(r.rows[idx[a]][slot], r.rows[idx[b]][slot])
		return err == nil && c < 0
	})
	return idx
}

// nestedLoopJoin joins with an arbitrary predicate (nil = cross join).
func nestedLoopJoin(l, r *relation, pred Expr) (*relation, error) {
	out := &relation{cols: append(append([]colMeta{}, l.cols...), r.cols...)}
	var f evalFn
	if pred != nil {
		var err error
		f, err = bindExpr(pred, out.cols)
		if err != nil {
			return nil, err
		}
	}
	for _, lrow := range l.rows {
		for _, rrow := range r.rows {
			joined := concatRows(lrow, rrow)
			if f != nil {
				v, err := f(joined)
				if err != nil {
					return nil, err
				}
				if v.IsNull() || !v.Bool() {
					continue
				}
			}
			out.rows = append(out.rows, joined)
		}
	}
	return out, nil
}

// leftJoin performs a left outer join with predicate on. Equi components of
// the predicate are used for hashing; the full predicate decides matching.
func leftJoin(l, r *relation, on Expr) (*relation, error) {
	out := &relation{cols: append(append([]colMeta{}, l.cols...), r.cols...)}
	conjuncts := splitConjuncts(on)
	keys, residual := extractEquiKeys(conjuncts, l, r)
	var resFn evalFn
	if res := andAll(residual); res != nil {
		var err error
		resFn, err = bindExpr(res, out.cols)
		if err != nil {
			return nil, err
		}
	}
	nullPad := make(Row, len(r.cols))
	if len(keys) > 0 {
		rCols := make([]int, len(keys))
		lCols := make([]int, len(keys))
		for i, k := range keys {
			rCols[i], lCols[i] = k.rSlot, k.lSlot
		}
		ht := make(map[string][]Row, len(r.rows))
		for _, row := range r.rows {
			if hasNullAt(row, rCols) {
				continue
			}
			k := RowKey(row, rCols)
			ht[k] = append(ht[k], row)
		}
		for _, lrow := range l.rows {
			matched := false
			if !hasNullAt(lrow, lCols) {
				for _, rrow := range ht[RowKey(lrow, lCols)] {
					joined := concatRows(lrow, rrow)
					if resFn != nil {
						v, err := resFn(joined)
						if err != nil {
							return nil, err
						}
						if v.IsNull() || !v.Bool() {
							continue
						}
					}
					out.rows = append(out.rows, joined)
					matched = true
				}
			}
			if !matched {
				out.rows = append(out.rows, concatRows(lrow, nullPad))
			}
		}
		return out, nil
	}
	// no equi keys: nested loop
	var onFn evalFn
	if on != nil {
		var err error
		onFn, err = bindExpr(on, out.cols)
		if err != nil {
			return nil, err
		}
	}
	for _, lrow := range l.rows {
		matched := false
		for _, rrow := range r.rows {
			joined := concatRows(lrow, rrow)
			if onFn != nil {
				v, err := onFn(joined)
				if err != nil {
					return nil, err
				}
				if v.IsNull() || !v.Bool() {
					continue
				}
			}
			out.rows = append(out.rows, joined)
			matched = true
		}
		if !matched {
			out.rows = append(out.rows, concatRows(lrow, nullPad))
		}
	}
	return out, nil
}

// naturalJoin joins on all same-named columns and keeps the shared columns
// once (from the left side), per SQL NATURAL JOIN semantics.
func naturalJoin(l, r *relation, profile Profile) (*relation, error) {
	type shared struct{ lSlot, rSlot int }
	var commons []shared
	rUsed := make(map[int]bool)
	for ls, lc := range l.cols {
		for rs, rc := range r.cols {
			if rUsed[rs] {
				continue
			}
			if lc.name == rc.name {
				commons = append(commons, shared{ls, rs})
				rUsed[rs] = true
				break
			}
		}
	}
	var keys []equiKey
	for _, c := range commons {
		keys = append(keys, equiKey{c.lSlot, c.rSlot})
	}
	var joined *relation
	var err error
	if len(keys) == 0 {
		joined, err = nestedLoopJoin(l, r, nil)
	} else if profile == ProfileSortMerge {
		joined, err = mergeJoin(l, r, keys, nil)
	} else {
		joined, err = hashJoin(l, r, keys, nil)
	}
	if err != nil {
		return nil, err
	}
	// Project away the right-side copies of shared columns.
	keep := make([]int, 0, len(joined.cols)-len(commons))
	for i := range l.cols {
		keep = append(keep, i)
	}
	for i := range r.cols {
		if !rUsed[i] {
			keep = append(keep, len(l.cols)+i)
		}
	}
	out := &relation{cols: make([]colMeta, len(keep))}
	for i, s := range keep {
		out.cols[i] = joined.cols[s]
	}
	out.rows = make([]Row, len(joined.rows))
	for ri, row := range joined.rows {
		nr := make(Row, len(keep))
		for i, s := range keep {
			nr[i] = row[s]
		}
		out.rows[ri] = nr
	}
	return out, nil
}

// distinctRows removes duplicate rows, preserving first occurrence order.
func distinctRows(r *relation) *relation {
	all := make([]int, len(r.cols))
	for i := range all {
		all[i] = i
	}
	seen := make(map[string]bool, len(r.rows))
	out := &relation{cols: r.cols, rows: make([]Row, 0, len(r.rows))}
	for _, row := range r.rows {
		k := RowKey(row, all)
		if seen[k] {
			continue
		}
		seen[k] = true
		out.rows = append(out.rows, row)
	}
	return out
}

// sortRelation sorts rows by the given key functions.
func sortRelation(r *relation, keys []evalFn, desc []bool) error {
	type keyed struct {
		row  Row
		keys []Value
	}
	ks := make([]keyed, len(r.rows))
	for i, row := range r.rows {
		kv := make([]Value, len(keys))
		for j, f := range keys {
			v, err := f(row)
			if err != nil {
				return err
			}
			kv[j] = v
		}
		ks[i] = keyed{row, kv}
	}
	sort.SliceStable(ks, func(a, b int) bool {
		for j := range keys {
			c, err := Compare(ks[a].keys[j], ks[b].keys[j])
			if err != nil {
				continue
			}
			if c == 0 {
				continue
			}
			if desc[j] {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	for i := range ks {
		r.rows[i] = ks[i].row
	}
	return nil
}

// relationFingerprint renders a stable textual digest of a relation (tests).
func relationFingerprint(r *relation) string {
	lines := make([]string, len(r.rows))
	for i, row := range r.rows {
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = v.String()
		}
		lines[i] = strings.Join(parts, "|")
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

var _ = fmt.Sprintf // keep fmt import if unused paths get pruned
