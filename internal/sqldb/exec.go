package sqldb

import (
	"fmt"
	"sort"
)

// relation is a materialized intermediate result. Base-table scans share the
// table's row storage (rows are never mutated in place by the executor).
type relation struct {
	cols []colMeta
	// rows may alias a base table's storage (star fast path) or another
	// relation's backing array; the sharedmut lint pass enforces that it is
	// freshened with an owned copy before any in-place mutation.
	rows []Row //lint:shared may alias base-table storage
	// vec is the columnar backing when the batch executor produced (or
	// scanned) this relation; immutable and possibly shared, like rows.
	// Base-table scans carry both backings so falling back to a row
	// operator is free; matRows() materializes (once) otherwise.
	vec *vecData
	mat bool // rows were materialized from vec (avoid re-materializing)
}

// filterRelation keeps rows where pred evaluates to TRUE. Inputs past the
// parallel threshold are filtered morsel-wise: workers claim fixed-size
// row chunks, keep survivors in per-morsel buffers, and the buffers are
// concatenated in morsel order — bit-identical to the sequential scan.
func filterRelation(ctx *execCtx, r *relation, pred Expr) (*relation, error) {
	if ctx.batchOn() && r.vec != nil {
		return batchFilter(ctx, r, pred)
	}
	r.matRows()
	f, err := bindExpr(pred, r.cols)
	if err != nil {
		return nil, err
	}
	if ctx.parWorkers() > 1 && len(r.rows) >= minParallelRows {
		return filterMorsels(ctx, r, f)
	}
	out := &relation{cols: r.cols}
	poll := ctx.pollMask()
	for i, row := range r.rows {
		if i&poll == 0 {
			if err := ctx.cancelled(); err != nil {
				return nil, err
			}
		}
		v, err := f(row)
		if err != nil {
			return nil, err
		}
		if !v.IsNull() && v.Bool() {
			out.rows = append(out.rows, row)
		}
	}
	return out, nil
}

// filterMorsels is the parallel arm of filterRelation. evalFns close only
// over immutable bind-time state, so one bound predicate serves all
// workers.
func filterMorsels(ctx *execCtx, r *relation, f evalFn) (*relation, error) {
	n := len(r.rows)
	m := (n + morselRows - 1) / morselRows
	kept := make([][]Row, m)
	workers, err := ctx.par.run(m, func(i int) error {
		lo := i * morselRows
		hi := lo + morselRows
		if hi > n {
			hi = n
		}
		var buf []Row
		for _, row := range r.rows[lo:hi] {
			v, err := f(row)
			if err != nil {
				return err
			}
			if !v.IsNull() && v.Bool() {
				buf = append(buf, row)
			}
		}
		kept[i] = buf
		return nil
	})
	if err != nil {
		return nil, err
	}
	ctx.par.stats.Morsels.Add(int64(m))
	total := 0
	for _, b := range kept {
		total += len(b)
	}
	out := &relation{cols: r.cols, rows: make([]Row, 0, total)}
	for _, b := range kept {
		out.rows = append(out.rows, b...)
	}
	ctx.setParNote(fmt.Sprintf(" [morsels=%d workers=%d]", m, workers))
	return out, nil
}

func concatRows(a, b Row) Row {
	out := make(Row, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	return out
}

// equiKey describes one equality column pair between two relations.
type equiKey struct {
	lSlot, rSlot int
}

// extractEquiKeys splits conjuncts into equi-join keys between l and r and
// residual predicates. Conjuncts referring only to one side are also
// returned as residual (callers push those down before joining).
func extractEquiKeys(conjuncts []Expr, l, r *relation) (keys []equiKey, residual []Expr) {
	for _, c := range conjuncts {
		if b, ok := c.(*BinOp); ok && b.Op == OpEq {
			lc, lok := b.L.(*ColRef)
			rc, rok := b.R.(*ColRef)
			if lok && rok {
				ls := findCol(l.cols, lc.Table, lc.Name)
				rs := findCol(r.cols, rc.Table, rc.Name)
				if ls >= 0 && rs >= 0 && findCol(r.cols, lc.Table, lc.Name) < 0 && findCol(l.cols, rc.Table, rc.Name) < 0 {
					keys = append(keys, equiKey{ls, rs})
					continue
				}
				// try swapped orientation
				ls2 := findCol(l.cols, rc.Table, rc.Name)
				rs2 := findCol(r.cols, lc.Table, lc.Name)
				if ls2 >= 0 && rs2 >= 0 && findCol(r.cols, rc.Table, rc.Name) < 0 && findCol(l.cols, lc.Table, lc.Name) < 0 {
					keys = append(keys, equiKey{ls2, rs2})
					continue
				}
			}
		}
		residual = append(residual, c)
	}
	return keys, residual
}

// splitConjuncts flattens nested ANDs.
func splitConjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*BinOp); ok && b.Op == OpAnd {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []Expr{e}
}

// andAll rebuilds a conjunction (nil for empty input).
func andAll(conjuncts []Expr) Expr {
	var out Expr
	for _, c := range conjuncts {
		if out == nil {
			out = c
		} else {
			out = &BinOp{Op: OpAnd, L: out, R: c}
		}
	}
	return out
}

// hashJoin performs an inner equi-join; residual conjuncts are checked on
// each candidate pair. Joins past the parallel threshold run partitioned:
// the build side is hashed into P disjoint partition tables by parallel
// workers and the probe side is probed morsel-wise, each morsel writing
// its own output buffer; build order within a key and probe order across
// morsels are preserved, so output order is bit-identical to sequential.
func hashJoin(ctx *execCtx, l, r *relation, keys []equiKey, residual Expr) (*relation, error) {
	if ctx.batchOn() && l.vec != nil && r.vec != nil && len(keys) > 0 {
		return batchHashJoin(ctx, l, r, keys, residual)
	}
	l.matRows()
	r.matRows()
	out := &relation{cols: append(append([]colMeta{}, l.cols...), r.cols...)}
	var resFn evalFn
	if residual != nil {
		var err error
		resFn, err = bindExpr(residual, out.cols)
		if err != nil {
			return nil, err
		}
	}
	// Build on the smaller side.
	build, probe := r, l
	buildRight := true
	if len(l.rows) < len(r.rows) {
		build, probe = l, r
		buildRight = false
	}
	buildCols := make([]int, len(keys))
	probeCols := make([]int, len(keys))
	for i, k := range keys {
		if buildRight {
			buildCols[i], probeCols[i] = k.rSlot, k.lSlot
		} else {
			buildCols[i], probeCols[i] = k.lSlot, k.rSlot
		}
	}
	if ctx.parWorkers() > 1 && len(build.rows)+len(probe.rows) >= minParallelRows {
		rows, err := partitionedHashJoin(ctx, build, probe, buildCols, probeCols, buildRight, resFn)
		if err != nil {
			return nil, err
		}
		out.rows = rows
		return out, nil
	}
	poll := ctx.pollMask()
	ht := make(map[string][]Row, len(build.rows))
	for i, row := range build.rows {
		if i&poll == 0 {
			if err := ctx.cancelled(); err != nil {
				return nil, err
			}
		}
		if hasNullAt(row, buildCols) {
			continue
		}
		k := RowKey(row, buildCols)
		ht[k] = append(ht[k], row)
	}
	for i, prow := range probe.rows {
		if i&poll == 0 {
			if err := ctx.cancelled(); err != nil {
				return nil, err
			}
		}
		if hasNullAt(prow, probeCols) {
			continue
		}
		for _, brow := range ht[RowKey(prow, probeCols)] {
			var joined Row
			if buildRight {
				joined = concatRows(prow, brow)
			} else {
				joined = concatRows(brow, prow)
			}
			if resFn != nil {
				v, err := resFn(joined)
				if err != nil {
					return nil, err
				}
				if v.IsNull() || !v.Bool() {
					continue
				}
			}
			out.rows = append(out.rows, joined)
		}
	}
	return out, nil
}

// partitionedHashJoin is the parallel arm of hashJoin. Three phases, each
// a parallel fan-out over the statement's worker budget:
//
//  1. key extraction — build-side join keys and their hashes, morsel-wise
//     ("" marks a NULL key, which can never join);
//  2. partitioned build — P workers each own partition p and insert every
//     build row with hash%P == p, scanning the build side in row order so
//     per-key row lists keep build order without any locking;
//  3. morsel probe — probe rows are hashed to their partition and probed
//     against it, each morsel appending matches to its own buffer.
//
// The buffers concatenate in morsel order, reproducing the sequential
// probe-order output exactly. A residual error surfaces from the morsel
// holding the earliest failing probe row — the same error sequential
// execution reports.
func partitionedHashJoin(ctx *execCtx, build, probe *relation, buildCols, probeCols []int, buildRight bool, resFn evalFn) ([]Row, error) {
	parts := ctx.parWorkers()
	if parts > maxJoinPartitions {
		parts = maxJoinPartitions
	}
	if parts < 2 {
		parts = 2
	}
	nb := len(build.rows)
	buildKeys := make([]string, nb)
	buildHash := make([]uint64, nb)
	mb := (nb + morselRows - 1) / morselRows
	if _, err := ctx.par.run(mb, func(i int) error {
		lo := i * morselRows
		hi := lo + morselRows
		if hi > nb {
			hi = nb
		}
		for j := lo; j < hi; j++ {
			if hasNullAt(build.rows[j], buildCols) {
				continue // buildKeys[j] stays "", the NULL marker
			}
			buildKeys[j] = RowKey(build.rows[j], buildCols)
			buildHash[j] = hashString(buildKeys[j])
		}
		return nil
	}); err != nil {
		return nil, err
	}
	tables := make([]map[string][]Row, parts)
	if _, err := ctx.par.run(parts, func(p int) error {
		ht := make(map[string][]Row, nb/parts+1)
		for j := 0; j < nb; j++ {
			if buildKeys[j] == "" || int(buildHash[j]%uint64(parts)) != p {
				continue
			}
			ht[buildKeys[j]] = append(ht[buildKeys[j]], build.rows[j])
		}
		tables[p] = ht
		return nil
	}); err != nil {
		return nil, err
	}
	np := len(probe.rows)
	mp := (np + morselRows - 1) / morselRows
	outs := make([][]Row, mp)
	workers, err := ctx.par.run(mp, func(i int) error {
		lo := i * morselRows
		hi := lo + morselRows
		if hi > np {
			hi = np
		}
		var buf []Row
		for _, prow := range probe.rows[lo:hi] {
			if hasNullAt(prow, probeCols) {
				continue
			}
			k := RowKey(prow, probeCols)
			for _, brow := range tables[hashString(k)%uint64(parts)][k] {
				var joined Row
				if buildRight {
					joined = concatRows(prow, brow)
				} else {
					joined = concatRows(brow, prow)
				}
				if resFn != nil {
					v, err := resFn(joined)
					if err != nil {
						return err
					}
					if v.IsNull() || !v.Bool() {
						continue
					}
				}
				buf = append(buf, joined)
			}
		}
		outs[i] = buf
		return nil
	})
	if err != nil {
		return nil, err
	}
	ctx.par.stats.JoinPartitions.Add(int64(parts))
	ctx.par.stats.Morsels.Add(int64(mb + mp))
	total := 0
	for _, b := range outs {
		total += len(b)
	}
	rows := make([]Row, 0, total)
	for _, b := range outs {
		rows = append(rows, b...)
	}
	ctx.setParNote(fmt.Sprintf(" [partitions=%d workers=%d]", parts, workers))
	return rows, nil
}

// mergeJoin sorts both sides on the first key column and merges; remaining
// keys and residual conjuncts are verified per pair. It reproduces the
// "PostgreSQL-like" profile behaviour (sort-merge machinery). ctx may be
// nil (standalone join without a statement's sort-order cache).
func mergeJoin(ctx *execCtx, l, r *relation, keys []equiKey, residual Expr) (*relation, error) {
	if len(keys) == 0 {
		return nestedLoopJoin(ctx, l, r, residual)
	}
	l.matRows()
	r.matRows()
	out := &relation{cols: append(append([]colMeta{}, l.cols...), r.cols...)}
	var resFn evalFn
	rest := keys[1:]
	checks := residual
	if residual != nil || len(rest) > 0 {
		var conj []Expr
		if residual != nil {
			conj = append(conj, residual)
		}
		_ = checks
		var err error
		if len(conj) > 0 {
			resFn, err = bindExpr(andAll(conj), out.cols)
			if err != nil {
				return nil, err
			}
		}
	}
	k0 := keys[0]
	li := ctx.sortedOrder(l, k0.lSlot)
	ri := ctx.sortedOrder(r, k0.rSlot)
	i, j := 0, 0
	steps := 0
	for i < len(li) && j < len(ri) {
		if steps&(morselRows-1) == 0 {
			if err := ctx.cancelled(); err != nil {
				return nil, err
			}
		}
		steps++
		lv := l.rows[li[i]][k0.lSlot]
		rv := r.rows[ri[j]][k0.rSlot]
		if lv.IsNull() {
			i++
			continue
		}
		if rv.IsNull() {
			j++
			continue
		}
		c, err := Compare(lv, rv)
		if err != nil {
			return nil, err
		}
		switch {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			// find the equal runs
			i2 := i
			for i2 < len(li) {
				v := l.rows[li[i2]][k0.lSlot]
				if v.IsNull() || !Equal(v, lv) {
					break
				}
				i2++
			}
			j2 := j
			for j2 < len(ri) {
				v := r.rows[ri[j2]][k0.rSlot]
				if v.IsNull() || !Equal(v, rv) {
					break
				}
				j2++
			}
			for a := i; a < i2; a++ {
				for b := j; b < j2; b++ {
					lrow, rrow := l.rows[li[a]], r.rows[ri[b]]
					ok := true
					for _, k := range rest {
						if !Equal(lrow[k.lSlot], rrow[k.rSlot]) {
							ok = false
							break
						}
					}
					if !ok {
						continue
					}
					joined := concatRows(lrow, rrow)
					if resFn != nil {
						v, err := resFn(joined)
						if err != nil {
							return nil, err
						}
						if v.IsNull() || !v.Bool() {
							continue
						}
					}
					out.rows = append(out.rows, joined)
				}
			}
			i, j = i2, j2
		}
	}
	return out, nil
}

// computeSortedOrder materializes the row order of r sorted by column
// slot. Callers go through execCtx.sortedOrder, the context-aware wrapper
// that caches per statement; this is the single underlying implementation.
func computeSortedOrder(r *relation, slot int) []int {
	idx := make([]int, len(r.rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		c, err := Compare(r.rows[idx[a]][slot], r.rows[idx[b]][slot])
		return err == nil && c < 0
	})
	return idx
}

// nestedLoopJoin joins with an arbitrary predicate (nil = cross join).
// ctx may be nil (standalone join without cancellation).
func nestedLoopJoin(ctx *execCtx, l, r *relation, pred Expr) (*relation, error) {
	l.matRows()
	r.matRows()
	out := &relation{cols: append(append([]colMeta{}, l.cols...), r.cols...)}
	var f evalFn
	if pred != nil {
		var err error
		f, err = bindExpr(pred, out.cols)
		if err != nil {
			return nil, err
		}
	}
	for _, lrow := range l.rows {
		if err := ctx.cancelled(); err != nil {
			return nil, err
		}
		for _, rrow := range r.rows {
			joined := concatRows(lrow, rrow)
			if f != nil {
				v, err := f(joined)
				if err != nil {
					return nil, err
				}
				if v.IsNull() || !v.Bool() {
					continue
				}
			}
			out.rows = append(out.rows, joined)
		}
	}
	return out, nil
}

// leftJoin performs a left outer join with predicate on. Equi components of
// the predicate are used for hashing; the full predicate decides matching.
// ctx may be nil (standalone join without cancellation).
func leftJoin(ctx *execCtx, l, r *relation, on Expr) (*relation, error) {
	l.matRows()
	r.matRows()
	out := &relation{cols: append(append([]colMeta{}, l.cols...), r.cols...)}
	conjuncts := splitConjuncts(on)
	keys, residual := extractEquiKeys(conjuncts, l, r)
	var resFn evalFn
	if res := andAll(residual); res != nil {
		var err error
		resFn, err = bindExpr(res, out.cols)
		if err != nil {
			return nil, err
		}
	}
	nullPad := make(Row, len(r.cols))
	if len(keys) > 0 {
		rCols := make([]int, len(keys))
		lCols := make([]int, len(keys))
		for i, k := range keys {
			rCols[i], lCols[i] = k.rSlot, k.lSlot
		}
		ht := make(map[string][]Row, len(r.rows))
		for _, row := range r.rows {
			if hasNullAt(row, rCols) {
				continue
			}
			k := RowKey(row, rCols)
			ht[k] = append(ht[k], row)
		}
		poll := ctx.pollMask()
		for i, lrow := range l.rows {
			if i&poll == 0 {
				if err := ctx.cancelled(); err != nil {
					return nil, err
				}
			}
			matched := false
			if !hasNullAt(lrow, lCols) {
				for _, rrow := range ht[RowKey(lrow, lCols)] {
					joined := concatRows(lrow, rrow)
					if resFn != nil {
						v, err := resFn(joined)
						if err != nil {
							return nil, err
						}
						if v.IsNull() || !v.Bool() {
							continue
						}
					}
					out.rows = append(out.rows, joined)
					matched = true
				}
			}
			if !matched {
				out.rows = append(out.rows, concatRows(lrow, nullPad))
			}
		}
		return out, nil
	}
	// no equi keys: nested loop
	var onFn evalFn
	if on != nil {
		var err error
		onFn, err = bindExpr(on, out.cols)
		if err != nil {
			return nil, err
		}
	}
	for _, lrow := range l.rows {
		if err := ctx.cancelled(); err != nil {
			return nil, err
		}
		matched := false
		for _, rrow := range r.rows {
			joined := concatRows(lrow, rrow)
			if onFn != nil {
				v, err := onFn(joined)
				if err != nil {
					return nil, err
				}
				if v.IsNull() || !v.Bool() {
					continue
				}
			}
			out.rows = append(out.rows, joined)
			matched = true
		}
		if !matched {
			out.rows = append(out.rows, concatRows(lrow, nullPad))
		}
	}
	return out, nil
}

// naturalJoin joins on all same-named columns and keeps the shared columns
// once (from the left side), per SQL NATURAL JOIN semantics.
func naturalJoin(ctx *execCtx, l, r *relation, profile Profile) (*relation, error) {
	type shared struct{ lSlot, rSlot int }
	var commons []shared
	rUsed := make(map[int]bool)
	for ls, lc := range l.cols {
		for rs, rc := range r.cols {
			if rUsed[rs] {
				continue
			}
			if lc.name == rc.name {
				commons = append(commons, shared{ls, rs})
				rUsed[rs] = true
				break
			}
		}
	}
	var keys []equiKey
	for _, c := range commons {
		keys = append(keys, equiKey{c.lSlot, c.rSlot})
	}
	var joined *relation
	var err error
	if len(keys) == 0 {
		joined, err = nestedLoopJoin(ctx, l, r, nil)
	} else if profile == ProfileSortMerge {
		joined, err = mergeJoin(ctx, l, r, keys, nil)
	} else {
		joined, err = hashJoin(ctx, l, r, keys, nil)
	}
	if err != nil {
		return nil, err
	}
	// Project away the right-side copies of shared columns.
	keep := make([]int, 0, len(joined.cols)-len(commons))
	for i := range l.cols {
		keep = append(keep, i)
	}
	for i := range r.cols {
		if !rUsed[i] {
			keep = append(keep, len(l.cols)+i)
		}
	}
	out := &relation{cols: make([]colMeta, len(keep))}
	for i, s := range keep {
		out.cols[i] = joined.cols[s]
	}
	joined.matRows()
	out.rows = make([]Row, len(joined.rows))
	for ri, row := range joined.rows {
		nr := make(Row, len(keep))
		for i, s := range keep {
			nr[i] = row[s]
		}
		out.rows[ri] = nr
	}
	return out, nil
}

// distinctRows removes duplicate rows, preserving first occurrence order.
// Rows are keyed by a hash computed into one reusable buffer — no per-row
// key string — with hash collisions resolved by semantic key comparison,
// so the dedup path allocates only the surviving-row slice and the bucket
// map (see BenchmarkDistinct for the before/after).
func distinctRows(r *relation) *relation {
	out := &relation{cols: r.cols, rows: make([]Row, 0, len(r.rows))}
	buckets := make(map[uint64][]int, len(r.rows))
	var buf []byte
	for _, row := range r.rows {
		buf = appendRowKey(buf[:0], row, nil)
		h := hashBytes(buf)
		dup := false
		for _, i := range buckets[h] {
			if rowKeyEq(out.rows[i], row) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		buckets[h] = append(buckets[h], len(out.rows))
		out.rows = append(out.rows, row)
	}
	return out
}

// sortRelation sorts rows by the given key functions, writing the new
// order into r's row slice in place: callers own r's backing array
// (orderRelation freshens it first, exactly because the slice can alias a
// base table via the star fast path).
//
//lint:mutates r
func sortRelation(r *relation, keys []evalFn, desc []bool) error {
	type keyed struct {
		row  Row
		keys []Value
	}
	ks := make([]keyed, len(r.rows))
	for i, row := range r.rows {
		kv := make([]Value, len(keys))
		for j, f := range keys {
			v, err := f(row)
			if err != nil {
				return err
			}
			kv[j] = v
		}
		ks[i] = keyed{row, kv}
	}
	sort.SliceStable(ks, func(a, b int) bool {
		for j := range keys {
			c, err := Compare(ks[a].keys[j], ks[b].keys[j])
			if err != nil {
				continue
			}
			if c == 0 {
				continue
			}
			if desc[j] {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	for i := range ks {
		r.rows[i] = ks[i].row
	}
	return nil
}

// relationFingerprint digests a relation order-insensitively (tests use it
// for multiset equality between profiles): per-row key hashes encoded into
// one reusable buffer are combined commutatively, so no per-row strings
// and no sort are needed.
func relationFingerprint(r *relation) string {
	var buf []byte
	var sum, xor uint64
	for _, row := range r.rows {
		buf = appendRowKey(buf[:0], row, nil)
		h := hashBytes(buf)
		sum += h
		xor ^= h
	}
	return fmt.Sprintf("%d:%016x:%016x", len(r.rows), sum, xor)
}
