package sqldb

import (
	"fmt"
	"sync"
)

// Table is an in-memory heap of rows plus its indexes and statistics.
// Reads (queries) may run concurrently; writes (inserts) must be external-
// ly serialized with respect to reads, as in the benchmark workflow where
// instances are generated up front and then queried by many clients.
type Table struct {
	Def  *TableDef
	Rows []Row

	pkIndex     *HashIndex            // over PrimaryKey columns, nil if no PK
	uniqueIdx   []*HashIndex          // parallel to Def.Uniques
	mu          sync.Mutex            // guards secondary and the stats cache
	secondary   map[string]*HashIndex // guarded by mu
	statsDirty  bool                  // guarded by mu
	cachedStats *TableStats           // guarded by mu
	seg         *vecData              // columnar segment cache, guarded by mu
}

// NewTable creates an empty table for the given definition.
func NewTable(def *TableDef) (*Table, error) {
	if err := def.Validate(); err != nil {
		return nil, err
	}
	t := &Table{Def: def, secondary: make(map[string]*HashIndex)}
	if len(def.PrimaryKey) > 0 {
		t.pkIndex = NewHashIndex(def.PrimaryKey)
	}
	for _, u := range def.Uniques {
		t.uniqueIdx = append(t.uniqueIdx, NewHashIndex(u))
	}
	return t, nil
}

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.Rows) }

// checkTypes verifies the row against column types and NOT NULL constraints.
func (t *Table) checkTypes(row Row) error {
	if len(row) != len(t.Def.Columns) {
		return fmt.Errorf("sqldb: table %s: row has %d values, want %d", t.Def.Name, len(row), len(t.Def.Columns))
	}
	for i, v := range row {
		c := t.Def.Columns[i]
		if v.IsNull() {
			if c.NotNull {
				return fmt.Errorf("sqldb: table %s: NULL in NOT NULL column %s", t.Def.Name, c.Name)
			}
			continue
		}
		want := c.Type.Kind()
		if v.Kind != want {
			// Allow int literals into float columns.
			if c.Type == TFloat && v.Kind == KindInt {
				row[i] = NewFloat(float64(v.I))
				continue
			}
			return fmt.Errorf("sqldb: table %s: column %s expects %s, got %s", t.Def.Name, c.Name, want, v.Kind)
		}
		if c.Type == TGeometry && v.G != nil && !v.G.Valid() {
			return fmt.Errorf("sqldb: table %s: column %s: invalid polygon", t.Def.Name, c.Name)
		}
	}
	return nil
}

// insertUnchecked appends the row and maintains indexes, without FK checks.
func (t *Table) insertUnchecked(row Row) error {
	if err := t.checkTypes(row); err != nil {
		return err
	}
	pos := len(t.Rows)
	if t.pkIndex != nil {
		if hasNullAt(row, t.Def.PrimaryKey) {
			return fmt.Errorf("sqldb: table %s: NULL in primary key", t.Def.Name)
		}
		if len(t.pkIndex.Lookup(row)) > 0 {
			return &DuplicateKeyError{Table: t.Def.Name, Key: RowKey(row, t.Def.PrimaryKey)}
		}
	}
	for ui, idx := range t.uniqueIdx {
		if hasNullAt(row, t.Def.Uniques[ui]) {
			continue // SQL: NULLs don't conflict in unique constraints
		}
		if len(idx.Lookup(row)) > 0 {
			return &DuplicateKeyError{Table: t.Def.Name, Key: RowKey(row, t.Def.Uniques[ui])}
		}
	}
	t.Rows = append(t.Rows, row)
	if t.pkIndex != nil {
		t.pkIndex.Add(row, pos)
	}
	for _, idx := range t.uniqueIdx {
		idx.Add(row, pos)
	}
	// The bulk-load contract serializes writes against reads externally,
	// but the secondary-index map and the stats cache are also maintained
	// by concurrent readers (EnsureIndex, Stats), so their mutex applies
	// here too — flagged by the lockguard pass, which found this access
	// running bare.
	t.mu.Lock()
	for _, idx := range t.secondary {
		idx.Add(row, pos)
	}
	t.statsDirty = true
	t.seg = nil
	t.mu.Unlock()
	return nil
}

func hasNullAt(row Row, cols []int) bool {
	for _, c := range cols {
		if row[c].IsNull() {
			return true
		}
	}
	return false
}

// DuplicateKeyError reports a primary/unique key violation.
type DuplicateKeyError struct {
	Table string
	Key   string
}

func (e *DuplicateKeyError) Error() string {
	return fmt.Sprintf("sqldb: duplicate key in table %s", e.Table)
}

// HasPKValue reports whether a row with the given primary-key projection
// exists. keyRow must carry the key values in the PK column positions.
func (t *Table) HasPKValue(key Row) bool {
	if t.pkIndex == nil {
		return false
	}
	return len(t.pkIndex.LookupKey(RowKeyOf(key))) > 0
}

// RowKeyOf builds a composite key directly from a value slice (all values
// used, in order).
func RowKeyOf(vals []Value) string {
	cols := make([]int, len(vals))
	for i := range cols {
		cols[i] = i
	}
	return RowKey(Row(vals), cols)
}

// EnsureIndex builds (or returns) a secondary hash index over the given
// column positions. Safe for concurrent readers.
func (t *Table) EnsureIndex(cols []int) *HashIndex {
	key := fmt.Sprint(cols)
	t.mu.Lock()
	defer t.mu.Unlock()
	if idx, ok := t.secondary[key]; ok {
		return idx
	}
	idx := NewHashIndex(cols)
	for pos, row := range t.Rows {
		idx.Add(row, pos)
	}
	t.secondary[key] = idx
	return idx
}

// TableStats summarizes a table for the optimizer and for VIG's analysis
// phase.
type TableStats struct {
	RowCount int
	// DistinctCount[i] is the exact number of distinct non-NULL values in
	// column i; NullCount[i] the number of NULLs.
	DistinctCount []int
	NullCount     []int
	// Min/Max hold extrema per column for ordered types; NULL when the
	// column is empty or unordered.
	Min, Max []Value
}

// DuplicateRatio returns (|T.C| - |distinct(T.C)|) / |T.C| for column i,
// the paper's measure (D); 0 for an empty column.
func (s *TableStats) DuplicateRatio(i int) float64 {
	n := s.RowCount - s.NullCount[i]
	if n <= 0 {
		return 0
	}
	return float64(n-s.DistinctCount[i]) / float64(n)
}

// Stats computes (and caches) exact table statistics. Safe for concurrent
// readers.
func (t *Table) Stats() *TableStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cachedStats != nil && !t.statsDirty {
		return t.cachedStats
	}
	nc := len(t.Def.Columns)
	s := &TableStats{
		RowCount:      len(t.Rows),
		DistinctCount: make([]int, nc),
		NullCount:     make([]int, nc),
		Min:           make([]Value, nc),
		Max:           make([]Value, nc),
	}
	for i := 0; i < nc; i++ {
		seen := make(map[string]struct{})
		var minV, maxV Value
		for _, row := range t.Rows {
			v := row[i]
			if v.IsNull() {
				s.NullCount[i]++
				continue
			}
			seen[v.Key()] = struct{}{}
			if v.Kind == KindGeometry {
				continue
			}
			if minV.IsNull() {
				minV, maxV = v, v
				continue
			}
			if c, err := Compare(v, minV); err == nil && c < 0 {
				minV = v
			}
			if c, err := Compare(v, maxV); err == nil && c > 0 {
				maxV = v
			}
		}
		s.DistinctCount[i] = len(seen)
		s.Min[i], s.Max[i] = minV, maxV
	}
	t.cachedStats = s
	t.statsDirty = false
	return s
}
