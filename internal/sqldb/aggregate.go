package sqldb

import (
	"fmt"
	"strings"
)

// evalAggregate executes the grouping/aggregation path of a SELECT block.
func (db *Database) evalAggregate(s *SelectStmt, input *relation) (*relation, error) {
	// Group rows.
	keyFns := make([]evalFn, len(s.GroupBy))
	for i, g := range s.GroupBy {
		fn, err := bindExpr(g, input.cols)
		if err != nil {
			return nil, err
		}
		keyFns[i] = fn
	}
	type group struct {
		rows []Row
	}
	groups := make(map[string]*group)
	var orderKeys []string
	for _, row := range input.rows {
		var kb strings.Builder
		for _, fn := range keyFns {
			v, err := fn(row)
			if err != nil {
				return nil, err
			}
			k := v.Key()
			kb.WriteString(fmt.Sprintf("%d:", len(k)))
			kb.WriteString(k)
		}
		k := kb.String()
		g, ok := groups[k]
		if !ok {
			g = &group{}
			groups[k] = g
			orderKeys = append(orderKeys, k)
		}
		g.rows = append(g.rows, row)
	}
	// Aggregates with no GROUP BY over an empty input still yield one group.
	if len(s.GroupBy) == 0 && len(orderKeys) == 0 {
		groups[""] = &group{}
		orderKeys = append(orderKeys, "")
	}

	// Output layout.
	var outCols []colMeta
	for _, it := range s.Items {
		if it.Star {
			return nil, fmt.Errorf("sqldb: SELECT * is not allowed with aggregation")
		}
		name := strings.ToLower(it.Alias)
		table := ""
		if name == "" {
			if cr, ok := it.Expr.(*ColRef); ok {
				name = strings.ToLower(cr.Name)
				table = strings.ToLower(cr.Table)
			} else {
				name = strings.ToLower(it.Expr.String())
			}
		}
		outCols = append(outCols, colMeta{table: table, name: name})
	}
	out := &relation{cols: outCols}
	for _, k := range orderKeys {
		g := groups[k]
		if s.Having != nil {
			hv, err := evalWithGroup(s.Having, g.rows, input.cols)
			if err != nil {
				return nil, err
			}
			if hv.IsNull() || !hv.Bool() {
				continue
			}
		}
		nr := make(Row, len(s.Items))
		for i, it := range s.Items {
			v, err := evalWithGroup(it.Expr, g.rows, input.cols)
			if err != nil {
				return nil, err
			}
			nr[i] = v
		}
		out.rows = append(out.rows, nr)
	}
	return out, nil
}

// evalWithGroup evaluates an expression in grouped context: aggregate calls
// consume the whole group; everything else is evaluated on the group's
// first row (queries are expected to group by the non-aggregated columns,
// as all NPD benchmark queries do).
func evalWithGroup(e Expr, rows []Row, cols []colMeta) (Value, error) {
	if f, ok := e.(*FuncExpr); ok && isAggregateName(f.Name) {
		return computeAggregate(f, rows, cols)
	}
	if !exprHasAggregate(e) {
		if len(rows) == 0 {
			return Null, nil
		}
		fn, err := bindExpr(e, cols)
		if err != nil {
			return Null, err
		}
		return fn(rows[0])
	}
	switch x := e.(type) {
	case *BinOp:
		lv, err := evalWithGroup(x.L, rows, cols)
		if err != nil {
			return Null, err
		}
		rv, err := evalWithGroup(x.R, rows, cols)
		if err != nil {
			return Null, err
		}
		return applyBinOp(x.Op, constFn(lv), constFn(rv), nil)
	case *NotExpr:
		v, err := evalWithGroup(x.E, rows, cols)
		if err != nil {
			return Null, err
		}
		if v.IsNull() {
			return Null, nil
		}
		return NewBool(!v.Bool()), nil
	case *IsNullExpr:
		v, err := evalWithGroup(x.E, rows, cols)
		if err != nil {
			return Null, err
		}
		return NewBool(v.IsNull() != x.Negate), nil
	}
	return Null, fmt.Errorf("sqldb: unsupported aggregate expression %s", e)
}

func constFn(v Value) evalFn {
	return func(Row) (Value, error) { return v, nil }
}

// computeAggregate evaluates COUNT/SUM/AVG/MIN/MAX (with DISTINCT and *).
func computeAggregate(f *FuncExpr, rows []Row, cols []colMeta) (Value, error) {
	if f.Star {
		if f.Name != "COUNT" {
			return Null, fmt.Errorf("sqldb: %s(*) is not valid", f.Name)
		}
		return NewInt(int64(len(rows))), nil
	}
	if len(f.Args) != 1 {
		return Null, fmt.Errorf("sqldb: %s expects one argument", f.Name)
	}
	argFn, err := bindExpr(f.Args[0], cols)
	if err != nil {
		return Null, err
	}
	var vals []Value
	seen := map[string]bool{}
	for _, row := range rows {
		v, err := argFn(row)
		if err != nil {
			return Null, err
		}
		if v.IsNull() {
			continue
		}
		if f.Distinct {
			k := v.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		vals = append(vals, v)
	}
	switch f.Name {
	case "COUNT":
		return NewInt(int64(len(vals))), nil
	case "SUM", "AVG":
		if len(vals) == 0 {
			return Null, nil
		}
		allInt := true
		var fi int64
		var ff float64
		for _, v := range vals {
			if v.Kind == KindInt {
				fi += v.I
				ff += float64(v.I)
				continue
			}
			allInt = false
			fv, ok := v.AsFloat()
			if !ok {
				return Null, fmt.Errorf("sqldb: %s over non-numeric value", f.Name)
			}
			ff += fv
		}
		if f.Name == "SUM" {
			if allInt {
				return NewInt(fi), nil
			}
			return NewFloat(ff), nil
		}
		return NewFloat(ff / float64(len(vals))), nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return Null, nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c, err := Compare(v, best)
			if err != nil {
				return Null, err
			}
			if (f.Name == "MIN" && c < 0) || (f.Name == "MAX" && c > 0) {
				best = v
			}
		}
		return best, nil
	}
	return Null, fmt.Errorf("sqldb: unknown aggregate %s", f.Name)
}
