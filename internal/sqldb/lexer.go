package sqldb

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokenKind
	text string // keywords upper-cased; idents as written
	pos  int
}

var sqlKeywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"NOT": true, "AS": true, "JOIN": true, "LEFT": true, "RIGHT": true,
	"INNER": true, "OUTER": true, "CROSS": true, "NATURAL": true, "ON": true,
	"GROUP": true, "BY": true, "HAVING": true, "ORDER": true, "ASC": true,
	"DESC": true, "LIMIT": true, "OFFSET": true, "UNION": true, "ALL": true,
	"DISTINCT": true, "IS": true, "NULL": true, "IN": true, "LIKE": true,
	"TRUE": true, "FALSE": true, "BETWEEN": true,
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lexSQL tokenizes src, returning the token stream terminated by tokEOF.
func lexSQL(src string) ([]token, error) {
	lx := &lexer{src: src}
	for {
		tok, err := lx.next()
		if err != nil {
			return nil, err
		}
		lx.toks = append(lx.toks, tok)
		if tok.kind == tokEOF {
			return lx.toks, nil
		}
	}
}

func (lx *lexer) next() (token, error) {
	for lx.pos < len(lx.src) && isSpace(lx.src[lx.pos]) {
		lx.pos++
	}
	if lx.pos >= len(lx.src) {
		return token{kind: tokEOF, pos: lx.pos}, nil
	}
	start := lx.pos
	c := lx.src[lx.pos]
	switch {
	case isIdentStart(c):
		for lx.pos < len(lx.src) && isIdentPart(lx.src[lx.pos]) {
			lx.pos++
		}
		word := lx.src[start:lx.pos]
		up := strings.ToUpper(word)
		if sqlKeywords[up] {
			return token{kind: tokKeyword, text: up, pos: start}, nil
		}
		return token{kind: tokIdent, text: word, pos: start}, nil
	case c >= '0' && c <= '9', c == '.' && lx.pos+1 < len(lx.src) && isDigit(lx.src[lx.pos+1]):
		sawDot := false
		for lx.pos < len(lx.src) {
			ch := lx.src[lx.pos]
			if isDigit(ch) {
				lx.pos++
				continue
			}
			if ch == '.' && !sawDot {
				sawDot = true
				lx.pos++
				continue
			}
			break
		}
		return token{kind: tokNumber, text: lx.src[start:lx.pos], pos: start}, nil
	case c == '\'':
		lx.pos++
		var sb strings.Builder
		for lx.pos < len(lx.src) {
			ch := lx.src[lx.pos]
			if ch == '\'' {
				if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '\'' {
					sb.WriteByte('\'')
					lx.pos += 2
					continue
				}
				lx.pos++
				return token{kind: tokString, text: sb.String(), pos: start}, nil
			}
			sb.WriteByte(ch)
			lx.pos++
		}
		return token{}, fmt.Errorf("sqldb: unterminated string at %d", start)
	case c == '"' || c == '`':
		// quoted identifier
		q := c
		lx.pos++
		s := lx.pos
		for lx.pos < len(lx.src) && lx.src[lx.pos] != q {
			lx.pos++
		}
		if lx.pos >= len(lx.src) {
			return token{}, fmt.Errorf("sqldb: unterminated quoted identifier at %d", start)
		}
		word := lx.src[s:lx.pos]
		lx.pos++
		return token{kind: tokIdent, text: word, pos: start}, nil
	default:
		// multi-char symbols first
		for _, sym := range []string{"<=", ">=", "<>", "!=", "||"} {
			if strings.HasPrefix(lx.src[lx.pos:], sym) {
				lx.pos += len(sym)
				if sym == "!=" {
					sym = "<>"
				}
				return token{kind: tokSymbol, text: sym, pos: start}, nil
			}
		}
		if strings.ContainsRune("()=<>,.*+-/;", rune(c)) {
			lx.pos++
			return token{kind: tokSymbol, text: string(c), pos: start}, nil
		}
		return token{}, fmt.Errorf("sqldb: unexpected character %q at %d", c, start)
	}
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || c == '$' || unicode.IsLetter(rune(c)) || isDigit(c)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
