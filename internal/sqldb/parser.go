package sqldb

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses a SELECT statement (possibly a UNION chain).
func Parse(sql string) (*SelectStmt, error) {
	toks, err := lexSQL(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: sql}
	stmt, err := p.parseSelectChain()
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tokSymbol && p.peek().text == ";" {
		p.advance()
	}
	if p.peek().kind != tokEOF {
		return nil, p.errf("unexpected trailing input %q", p.peek().text)
	}
	return stmt, nil
}

// MustParse parses or panics; for static query/mapping definitions.
func MustParse(sql string) *SelectStmt {
	s, err := Parse(sql)
	if err != nil {
		panic(fmt.Sprintf("sqldb.MustParse(%q): %v", sql, err))
	}
	return s
}

type parser struct {
	toks []token
	i    int
	src  string
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) advance() token {
	t := p.toks[p.i]
	if p.i < len(p.toks)-1 {
		p.i++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sqldb: parse error near offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.peek().kind == tokKeyword && p.peek().text == kw {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s, got %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) acceptSymbol(sym string) bool {
	if p.peek().kind == tokSymbol && p.peek().text == sym {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return p.errf("expected %q, got %q", sym, p.peek().text)
	}
	return nil
}

func (p *parser) parseSelectChain() (*SelectStmt, error) {
	head, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	cur := head
	for p.acceptKeyword("UNION") {
		all := p.acceptKeyword("ALL")
		next, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		cur.Union = next
		head.UnionAll = head.UnionAll || all
		cur = next
	}
	return head, nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	s := NewSelect()
	s.Distinct = p.acceptKeyword("DISTINCT")
	if p.acceptKeyword("ALL") {
		// SELECT ALL is the default
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if p.acceptKeyword("FROM") {
		for {
			tr, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			s.From = append(s.From, tr)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Having = e
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			oi := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				oi.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			s.OrderBy = append(s.OrderBy, oi)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		n, err := p.parseIntToken()
		if err != nil {
			return nil, err
		}
		s.Limit = n
		if p.acceptKeyword("OFFSET") {
			m, err := p.parseIntToken()
			if err != nil {
				return nil, err
			}
			s.Offset = m
		}
	}
	return s, nil
}

func (p *parser) parseIntToken() (int, error) {
	t := p.peek()
	if t.kind != tokNumber {
		return 0, p.errf("expected number, got %q", t.text)
	}
	p.advance()
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, p.errf("bad integer %q", t.text)
	}
	return n, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.acceptSymbol("*") {
		return SelectItem{Star: true}, nil
	}
	// t.* lookahead
	if p.peek().kind == tokIdent && p.i+2 < len(p.toks) &&
		p.toks[p.i+1].kind == tokSymbol && p.toks[p.i+1].text == "." &&
		p.toks[p.i+2].kind == tokSymbol && p.toks[p.i+2].text == "*" {
		tbl := p.advance().text
		p.advance()
		p.advance()
		return SelectItem{Star: true, Table: tbl}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		t := p.peek()
		if t.kind != tokIdent && t.kind != tokKeyword {
			return SelectItem{}, p.errf("expected alias, got %q", t.text)
		}
		p.advance()
		item.Alias = t.text
	} else if p.peek().kind == tokIdent {
		item.Alias = p.advance().text
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	left, err := p.parsePrimaryTableRef()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptKeyword("NATURAL"):
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			right, err := p.parsePrimaryTableRef()
			if err != nil {
				return nil, err
			}
			left = &JoinRef{Kind: JoinNatural, L: left, R: right}
		case p.acceptKeyword("CROSS"):
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			right, err := p.parsePrimaryTableRef()
			if err != nil {
				return nil, err
			}
			left = &JoinRef{Kind: JoinCross, L: left, R: right}
		case p.acceptKeyword("LEFT"):
			p.acceptKeyword("OUTER")
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			right, err := p.parsePrimaryTableRef()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("ON"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			left = &JoinRef{Kind: JoinLeft, L: left, R: right, On: on}
		case p.acceptKeyword("INNER"), p.peekKeyword("JOIN"):
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			right, err := p.parsePrimaryTableRef()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("ON"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			left = &JoinRef{Kind: JoinInner, L: left, R: right, On: on}
		default:
			return left, nil
		}
	}
}

func (p *parser) peekKeyword(kw string) bool {
	return p.peek().kind == tokKeyword && p.peek().text == kw
}

func (p *parser) parsePrimaryTableRef() (TableRef, error) {
	if p.acceptSymbol("(") {
		sub, err := p.parseSelectChain()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		alias := ""
		if p.acceptKeyword("AS") {
			t := p.peek()
			if t.kind != tokIdent {
				return nil, p.errf("expected subquery alias")
			}
			alias = p.advance().text
		} else if p.peek().kind == tokIdent {
			alias = p.advance().text
		}
		if alias == "" {
			return nil, p.errf("derived table requires an alias")
		}
		return &SubqueryTable{Query: sub, Alias: alias}, nil
	}
	t := p.peek()
	if t.kind != tokIdent {
		return nil, p.errf("expected table name, got %q", t.text)
	}
	p.advance()
	bt := &BaseTable{Name: t.text, Alias: t.text}
	if p.acceptKeyword("AS") {
		a := p.peek()
		if a.kind != tokIdent {
			return nil, p.errf("expected alias, got %q", a.text)
		}
		p.advance()
		bt.Alias = a.text
	} else if p.peek().kind == tokIdent {
		bt.Alias = p.advance().text
	}
	return bt, nil
}

// ---- expression parsing (precedence climbing) ----

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotExpr{E: e}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// postfix predicates
	for {
		switch {
		case p.acceptKeyword("IS"):
			neg := p.acceptKeyword("NOT")
			if err := p.expectKeyword("NULL"); err != nil {
				return nil, err
			}
			l = &IsNullExpr{E: l, Negate: neg}
		case p.peekKeyword("NOT") && p.i+1 < len(p.toks) && p.toks[p.i+1].kind == tokKeyword &&
			(p.toks[p.i+1].text == "IN" || p.toks[p.i+1].text == "LIKE" || p.toks[p.i+1].text == "BETWEEN"):
			p.advance() // NOT
			e, err := p.parsePostfixPredicate(l, true)
			if err != nil {
				return nil, err
			}
			l = e
		case p.peekKeyword("IN"), p.peekKeyword("LIKE"), p.peekKeyword("BETWEEN"):
			e, err := p.parsePostfixPredicate(l, false)
			if err != nil {
				return nil, err
			}
			l = e
		default:
			goto ops
		}
	}
ops:
	t := p.peek()
	if t.kind == tokSymbol {
		var op BinOpKind
		ok := true
		switch t.text {
		case "=":
			op = OpEq
		case "<>":
			op = OpNe
		case "<":
			op = OpLt
		case "<=":
			op = OpLe
		case ">":
			op = OpGt
		case ">=":
			op = OpGe
		default:
			ok = false
		}
		if ok {
			p.advance()
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BinOp{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parsePostfixPredicate(l Expr, neg bool) (Expr, error) {
	switch {
	case p.acceptKeyword("IN"):
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &InExpr{E: l, List: list, Negate: neg}, nil
	case p.acceptKeyword("LIKE"):
		pat, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &LikeExpr{E: l, Pattern: pat, Negate: neg}, nil
	case p.acceptKeyword("BETWEEN"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		rng := &BinOp{Op: OpAnd,
			L: &BinOp{Op: OpGe, L: l, R: lo},
			R: &BinOp{Op: OpLe, L: l, R: hi}}
		if neg {
			return &NotExpr{E: rng}, nil
		}
		return rng, nil
	}
	return nil, p.errf("expected IN/LIKE/BETWEEN")
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokSymbol {
			return l, nil
		}
		var op BinOpKind
		switch t.text {
		case "+":
			op = OpAdd
		case "-":
			op = OpSub
		case "||":
			op = OpConcat
		default:
			return l, nil
		}
		p.advance()
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: op, L: l, R: r}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokSymbol {
			return l, nil
		}
		var op BinOpKind
		switch t.text {
		case "*":
			op = OpMul
		case "/":
			op = OpDiv
		default:
			return l, nil
		}
		p.advance()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptSymbol("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &BinOp{Op: OpSub, L: &Lit{Val: NewInt(0)}, R: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.advance()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.text)
			}
			return &Lit{Val: NewFloat(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return &Lit{Val: NewInt(n)}, nil
	case tokString:
		p.advance()
		return &Lit{Val: NewString(t.text)}, nil
	case tokKeyword:
		switch t.text {
		case "NULL":
			p.advance()
			return &Lit{Val: Null}, nil
		case "TRUE":
			p.advance()
			return &Lit{Val: NewBool(true)}, nil
		case "FALSE":
			p.advance()
			return &Lit{Val: NewBool(false)}, nil
		}
		return nil, p.errf("unexpected keyword %q in expression", t.text)
	case tokSymbol:
		if t.text == "(" {
			p.advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, p.errf("unexpected symbol %q", t.text)
	case tokIdent:
		p.advance()
		// function call?
		if p.acceptSymbol("(") {
			f := &FuncExpr{Name: strings.ToUpper(t.text)}
			if p.acceptSymbol("*") {
				f.Star = true
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
				return f, nil
			}
			f.Distinct = p.acceptKeyword("DISTINCT")
			if !p.acceptSymbol(")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					f.Args = append(f.Args, a)
					if !p.acceptSymbol(",") {
						break
					}
				}
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
			}
			return f, nil
		}
		// qualified column?
		if p.acceptSymbol(".") {
			c := p.peek()
			if c.kind != tokIdent && c.kind != tokKeyword {
				return nil, p.errf("expected column after %q.", t.text)
			}
			p.advance()
			return &ColRef{Table: t.text, Name: c.text}, nil
		}
		return &ColRef{Name: t.text}, nil
	}
	return nil, p.errf("unexpected token %q", t.text)
}
