package sqldb

import (
	"fmt"
	"strings"
)

// The vectorized batch executor. Operators with a columnar input process it
// in fixed-size batches: scan exposes the table segment, filter evaluates
// compiled vector predicates (or an arbitrary bound expression over one
// reusable scratch row), hash join vectorizes build-key hashing and probes
// batch-wise, DISTINCT and aggregate group by per-row class hashes verified
// with Value.keyEq. Every batch loop polls cancellation and accounts usage
// at batch boundaries, and every converted operator reports a batches=
// counter into EXPLAIN ANALYZE. Operators without a batch implementation
// (sort, merge join, outer/nested-loop joins, complex projections) receive
// rows materialized once at the fallback boundary — results are row-for-row
// identical to the row-at-a-time path at any batch size.

// DefaultBatchSize is the number of rows a batch operator processes per
// inner loop. Large enough to amortize per-batch bookkeeping, small enough
// that batch-local scratch stays cache-resident; BatchSize 1 in ExecOptions
// selects the row-at-a-time executor.
const DefaultBatchSize = 1024

// batchOn reports whether this execution runs the vectorized path.
func (ctx *execCtx) batchOn() bool { return ctx != nil && ctx.batch > 1 }

// batchSize returns the resolved batch size of this execution.
func (ctx *execCtx) batchSize() int {
	if ctx == nil || ctx.batch < 1 {
		return DefaultBatchSize
	}
	return ctx.batch
}

// pollMask returns the cancellation poll interval of row-granular loops as
// a power-of-two mask: polls happen on batch boundaries, so shrinking the
// batch size tightens the cancellation latency with it. The row-at-a-time
// executor keeps the classic morsel-sized poll.
func (ctx *execCtx) pollMask() int {
	if ctx == nil || ctx.batch <= 1 {
		return morselRows - 1
	}
	m := 1
	for m < ctx.batch {
		m <<= 1
	}
	return m - 1
}

// countBatches folds processed batches into the execution stats.
func (ctx *execCtx) countBatches(n int) {
	if ctx != nil && ctx.stats != nil {
		ctx.stats.Batches.Add(int64(n))
	}
}

// setBatches stashes the batches= annotation of the operator just executed;
// the call site owning the profile node collects it with takeBatches.
func (ctx *execCtx) setBatches(n int) {
	if ctx != nil {
		ctx.lastBatches = n
	}
}

// takeBatches returns and clears the pending batches= annotation.
func (ctx *execCtx) takeBatches() int {
	if ctx == nil {
		return 0
	}
	n := ctx.lastBatches
	ctx.lastBatches = 0
	return n
}

// accountBatch records one emitted batch into the usage tracker: usage is
// accounted per batch, so a canceled query's counters reflect exactly the
// batches that completed.
func (ctx *execCtx) accountBatch(rows, cols int) {
	if ctx != nil && ctx.usage != nil && rows > 0 {
		ctx.usage.AddRowsProduced(int64(rows), int64(rows)*int64(cols)*approxValueBytes)
	}
}

func numBatches(n, bs int) int {
	if n == 0 {
		return 0
	}
	return (n + bs - 1) / bs
}

// ---- scratch pool --------------------------------------------------------

// vecScratch is the batch executor's reusable scratch: selection flags, the
// survivor-index accumulators, and key-hash buffers. An OBDA unfolding
// executes thousands of small union arms per statement, so the fixed
// per-operator cost of these buffers dominates allocation counts unless
// they are recycled; sequential operators borrow the context's pool for
// the duration of one operator and return it, which amortizes the cost to
// zero after the first operator. Parallel batch tasks are handed fresh
// scratch instead — the pool is goroutine-local, never shared.
type vecScratch struct {
	keep []bool   // per-batch predicate results
	sel  []int32  // survivor / probe-side index accumulator
	selR []int32  // build-side index accumulator (joins)
	hash []uint64 // full-input key hashes (join build side)
	bh   []uint64 // per-batch key hashes
}

// borrowVecScratch hands out the context's scratch pool, emptying the slot
// so an unexpected nested borrow allocates fresh buffers instead of
// corrupting the outer operator's state.
func (ctx *execCtx) borrowVecScratch() *vecScratch {
	if ctx != nil && ctx.vecs != nil {
		s := ctx.vecs
		ctx.vecs = nil
		return s
	}
	return &vecScratch{}
}

// returnVecScratch gives the (possibly grown) buffers back to the context
// for the next operator.
func (ctx *execCtx) returnVecScratch(s *vecScratch) {
	if ctx != nil {
		ctx.vecs = s
	}
}

// batchHashes fills the scratch per-batch hash buffer with composite key
// hashes of rows [lo,hi) over the given column slots.
func (s *vecScratch) batchHashes(vd *vecData, slots []int, lo, hi int) []uint64 {
	s.bh = vd.hashKeyRange(s.bh, slots, lo, hi)
	return s.bh
}

// ---- vectorized predicates ----------------------------------------------

// vecPred fills dst[j] with whether row lo+j survives the filter (predicate
// evaluates to TRUE; FALSE and NULL both drop the row). Compiled predicates
// capture per-batch scratch, so each goroutine compiles its own.
type vecPred func(dst []bool, lo, hi int)

// cmpKeep applies a comparison operator to a Compare result.
func cmpKeep(op BinOpKind, c int) bool {
	switch op {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGe:
		return c >= 0
	}
	return false
}

// flipCmp mirrors a comparison so "lit op col" compiles as "col op' lit".
func flipCmp(op BinOpKind) BinOpKind {
	switch op {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	}
	return op // Eq, Ne are symmetric
}

func isCmpOp(op BinOpKind) bool {
	switch op {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return true
	}
	return false
}

func isNumericKind(k Kind) bool {
	return k == KindInt || k == KindFloat || k == KindDate
}

// compileVecPred compiles a filter predicate into a type-specialized vector
// evaluator, or returns nil when the shape is not convertible (the caller
// then evaluates the bound expression over a scratch row — still batched).
// NOT is never compiled: the kept-row semantics used here (TRUE keeps,
// FALSE/NULL drop) compose soundly under AND and OR but not under negation.
func compileVecPred(e Expr, vd *vecData, cols []colMeta) vecPred {
	switch x := e.(type) {
	case *BinOp:
		switch {
		case x.Op == OpAnd, x.Op == OpOr:
			l := compileVecPred(x.L, vd, cols)
			if l == nil {
				return nil
			}
			r := compileVecPred(x.R, vd, cols)
			if r == nil {
				return nil
			}
			tmp := make([]bool, 0, DefaultBatchSize)
			and := x.Op == OpAnd
			return func(dst []bool, lo, hi int) {
				l(dst, lo, hi)
				tmp = tmp[:0]
				for range dst {
					tmp = append(tmp, false)
				}
				r(tmp, lo, hi)
				if and {
					for j := range dst {
						dst[j] = dst[j] && tmp[j]
					}
				} else {
					for j := range dst {
						dst[j] = dst[j] || tmp[j]
					}
				}
			}
		case isCmpOp(x.Op):
			if lc, ok := x.L.(*ColRef); ok {
				if lit, ok := x.R.(*Lit); ok {
					return compileColLitCmp(x.Op, lc, lit.Val, vd, cols)
				}
				if rc, ok := x.R.(*ColRef); ok {
					return compileColColCmp(x.Op, lc, rc, vd, cols)
				}
			}
			if lit, ok := x.L.(*Lit); ok {
				if rc, ok := x.R.(*ColRef); ok {
					return compileColLitCmp(flipCmp(x.Op), rc, lit.Val, vd, cols)
				}
			}
			return nil
		}
		return nil
	case *IsNullExpr:
		cr, ok := x.E.(*ColRef)
		if !ok {
			return nil
		}
		slot := findCol(cols, cr.Table, cr.Name)
		if slot < 0 {
			return nil
		}
		c := &vd.cols[slot]
		neg := x.Negate
		return func(dst []bool, lo, hi int) {
			for j := range dst {
				dst[j] = c.nulls.get(lo+j) != neg
			}
		}
	case *LikeExpr:
		cr, ok := x.E.(*ColRef)
		if !ok {
			return nil
		}
		lit, ok := x.Pattern.(*Lit)
		if !ok || lit.Val.IsNull() {
			return nil
		}
		slot := findCol(cols, cr.Table, cr.Name)
		if slot < 0 || vd.cols[slot].kind != KindString {
			return nil
		}
		c := &vd.cols[slot]
		pat := lit.Val.String()
		neg := x.Negate
		// One LIKE evaluation per distinct dictionary value, not per row.
		match := make([]bool, c.dict.size())
		for i, s := range c.dict.vals {
			match[i] = likeMatch(s, pat) != neg
		}
		return func(dst []bool, lo, hi int) {
			for j := range dst {
				i := lo + j
				dst[j] = !c.nulls.get(i) && match[c.codes[i]]
			}
		}
	case *InExpr:
		cr, ok := x.E.(*ColRef)
		if !ok {
			return nil
		}
		slot := findCol(cols, cr.Table, cr.Name)
		if slot < 0 {
			return nil
		}
		lits := make([]Value, 0, len(x.List))
		sawNull := false
		for _, it := range x.List {
			lit, ok := it.(*Lit)
			if !ok {
				return nil
			}
			if lit.Val.IsNull() {
				sawNull = true
				continue
			}
			lits = append(lits, lit.Val)
		}
		c := &vd.cols[slot]
		neg := x.Negate
		// matched -> !neg; unmatched with a NULL in the list -> NULL
		// (dropped); unmatched otherwise -> neg.
		unmatched := neg && !sawNull
		if c.kind == KindString {
			match := make([]bool, c.dict.size())
			for i, s := range c.dict.vals {
				hit := false
				for _, lv := range lits {
					if Equal(Value{Kind: KindString, S: s}, lv) {
						hit = true
						break
					}
				}
				if hit {
					match[i] = !neg
				} else {
					match[i] = unmatched
				}
			}
			return func(dst []bool, lo, hi int) {
				for j := range dst {
					i := lo + j
					dst[j] = !c.nulls.get(i) && match[c.codes[i]]
				}
			}
		}
		return func(dst []bool, lo, hi int) {
			for j := range dst {
				i := lo + j
				if c.nulls.get(i) {
					dst[j] = false
					continue
				}
				v := c.value(i)
				hit := false
				for _, lv := range lits {
					if Equal(v, lv) {
						hit = true
						break
					}
				}
				if hit {
					dst[j] = !neg
				} else {
					dst[j] = unmatched
				}
			}
		}
	}
	return nil
}

// compileColLitCmp compiles "col op literal" with a type-specialized loop.
// Comparison semantics replicate applyBinOp exactly: NULL operands drop the
// row, incomparable kinds compare FALSE, and numeric comparisons go through
// float64 like Value.Compare.
func compileColLitCmp(op BinOpKind, cr *ColRef, lit Value, vd *vecData, cols []colMeta) vecPred {
	slot := findCol(cols, cr.Table, cr.Name)
	if slot < 0 {
		return nil
	}
	c := &vd.cols[slot]
	if lit.IsNull() {
		return func(dst []bool, lo, hi int) {
			for j := range dst {
				dst[j] = false
			}
		}
	}
	if lf, ok := lit.AsFloat(); ok && isNumericKind(c.kind) {
		switch c.kind {
		case KindInt, KindDate:
			ints := c.ints
			return func(dst []bool, lo, hi int) {
				for j := range dst {
					i := lo + j
					if c.nulls.get(i) {
						dst[j] = false
						continue
					}
					dst[j] = cmpKeep(op, cmpFloat(float64(ints[i]), lf))
				}
			}
		case KindFloat:
			floats := c.floats
			return func(dst []bool, lo, hi int) {
				for j := range dst {
					i := lo + j
					if c.nulls.get(i) {
						dst[j] = false
						continue
					}
					dst[j] = cmpKeep(op, cmpFloat(floats[i], lf))
				}
			}
		}
	}
	if c.kind == KindString && lit.Kind == KindString {
		// One comparison per distinct dictionary value.
		match := make([]bool, c.dict.size())
		for i, s := range c.dict.vals {
			match[i] = cmpKeep(op, strings.Compare(s, lit.S))
		}
		return func(dst []bool, lo, hi int) {
			for j := range dst {
				i := lo + j
				dst[j] = !c.nulls.get(i) && match[c.codes[i]]
			}
		}
	}
	// Remaining kind pairings (bool vs bool, geometry, mismatches): one
	// generic loop over materialized cells, identical to applyBinOp.
	return func(dst []bool, lo, hi int) {
		for j := range dst {
			i := lo + j
			if c.nulls.get(i) {
				dst[j] = false
				continue
			}
			cv, err := Compare(c.value(i), lit)
			dst[j] = err == nil && cmpKeep(op, cv)
		}
	}
}

// compileColColCmp compiles "colA op colB" over two vectors.
func compileColColCmp(op BinOpKind, lc, rc *ColRef, vd *vecData, cols []colMeta) vecPred {
	ls := findCol(cols, lc.Table, lc.Name)
	rs := findCol(cols, rc.Table, rc.Name)
	if ls < 0 || rs < 0 {
		return nil
	}
	a, b := &vd.cols[ls], &vd.cols[rs]
	if isNumericKind(a.kind) && isNumericKind(b.kind) {
		af := numAccessor(a)
		bf := numAccessor(b)
		return func(dst []bool, lo, hi int) {
			for j := range dst {
				i := lo + j
				if a.nulls.get(i) || b.nulls.get(i) {
					dst[j] = false
					continue
				}
				dst[j] = cmpKeep(op, cmpFloat(af(i), bf(i)))
			}
		}
	}
	if a.kind == KindString && b.kind == KindString {
		sameDict := a.dict == b.dict && (op == OpEq || op == OpNe)
		return func(dst []bool, lo, hi int) {
			for j := range dst {
				i := lo + j
				if a.nulls.get(i) || b.nulls.get(i) {
					dst[j] = false
					continue
				}
				if sameDict {
					dst[j] = cmpKeep(op, boolToCmp(a.codes[i] == b.codes[i]))
					continue
				}
				dst[j] = cmpKeep(op, strings.Compare(a.dict.vals[a.codes[i]], b.dict.vals[b.codes[i]]))
			}
		}
	}
	return func(dst []bool, lo, hi int) {
		for j := range dst {
			i := lo + j
			if a.nulls.get(i) || b.nulls.get(i) {
				dst[j] = false
				continue
			}
			cv, err := Compare(a.value(i), b.value(i))
			dst[j] = err == nil && cmpKeep(op, cv)
		}
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// boolToCmp maps equality to a Compare-style result (only consumed by
// Eq/Ne, so any nonzero works for "not equal").
func boolToCmp(eq bool) int {
	if eq {
		return 0
	}
	return 1
}

func numAccessor(c *colvec) func(int) float64 {
	if c.kind == KindFloat {
		floats := c.floats
		return func(i int) float64 { return floats[i] }
	}
	ints := c.ints
	return func(i int) float64 { return float64(ints[i]) }
}

// ---- batch filter --------------------------------------------------------

// batchFilter evaluates pred over a columnar relation batch by batch,
// accumulating survivor indices, then gathers them into exactly-sized
// fresh vectors in one pass. Inputs past the parallel threshold fan
// batches out over the worker pool; per-batch outputs concatenate in
// batch order, bit-identical to the sequential scan.
func batchFilter(ctx *execCtx, r *relation, pred Expr) (*relation, error) {
	vd := r.vec
	n := vd.n
	bs := ctx.batchSize()
	nb := numBatches(n, bs)
	if ctx.parWorkers() > 1 && n >= minParallelRows && nb > 1 {
		return batchFilterParallel(ctx, r, pred, nb, bs)
	}
	scr := ctx.borrowVecScratch()
	defer ctx.returnVecScratch(scr)
	runBatch, err := newBatchFilterTask(r, pred, scr)
	if err != nil {
		return nil, err
	}
	sel := scr.sel[:0]
	for b := 0; b < nb; b++ {
		if err := ctx.cancelled(); err != nil {
			return nil, err
		}
		before := len(sel)
		sel, err = runBatch(sel, b*bs, minInt(b*bs+bs, n))
		if err != nil {
			return nil, err
		}
		ctx.accountBatch(len(sel)-before, len(r.cols))
	}
	scr.sel = sel
	out := newVecBuilder(vd.cols)
	out.reserve(len(sel))
	out.gather(vd.cols, sel)
	ctx.countBatches(nb)
	ctx.setBatches(nb)
	return &relation{cols: r.cols, vec: out.build()}, nil
}

// newBatchFilterTask compiles pred for one goroutine's use and returns a
// closure that appends the surviving row indices of [lo,hi) to sel. Each
// parallel worker compiles its own task with its own scratch: compiled
// predicates, the keep buffer and the scratch row are single-goroutine
// state.
func newBatchFilterTask(r *relation, pred Expr, scr *vecScratch) (func(sel []int32, lo, hi int) ([]int32, error), error) {
	vd := r.vec
	vp := compileVecPred(pred, vd, r.cols)
	var f evalFn
	var scratch Row
	if vp == nil {
		var err error
		f, err = bindExpr(pred, r.cols)
		if err != nil {
			return nil, err
		}
		scratch = make(Row, len(vd.cols))
	}
	return func(sel []int32, lo, hi int) ([]int32, error) {
		keep := scr.keep[:0]
		for i := lo; i < hi; i++ {
			keep = append(keep, false)
		}
		scr.keep = keep
		if vp != nil {
			vp(keep, lo, hi)
		} else {
			for i := lo; i < hi; i++ {
				vd.rowInto(scratch, i)
				v, err := f(scratch)
				if err != nil {
					return nil, err
				}
				keep[i-lo] = !v.IsNull() && v.Bool()
			}
		}
		for j, k := range keep {
			if k {
				sel = append(sel, int32(lo+j))
			}
		}
		return sel, nil
	}, nil
}

// batchFilterParallel is the morsel-parallel arm of batchFilter: workers
// claim whole batches, each filtering into a per-batch builder; the merge
// pre-sizes the output to the exact survivor total.
func batchFilterParallel(ctx *execCtx, r *relation, pred Expr, nb, bs int) (*relation, error) {
	vd := r.vec
	n := vd.n
	outs := make([]*vecBuilder, nb)
	// Per-worker task state is created lazily inside the tasks; par.run
	// gives no worker identity, so state hangs off the batch index and the
	// compile cost is paid per batch (small next to the scan itself).
	workers, err := ctx.par.run(nb, func(b int) error {
		runBatch, err := newBatchFilterTask(r, pred, &vecScratch{})
		if err != nil {
			return err
		}
		sel, err := runBatch(nil, b*bs, minInt(b*bs+bs, n))
		if err != nil {
			return err
		}
		out := newVecBuilder(vd.cols)
		out.reserve(len(sel))
		out.gather(vd.cols, sel)
		ctx.accountBatch(len(sel), len(r.cols))
		outs[b] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	ctx.par.stats.Morsels.Add(int64(nb))
	total := 0
	for _, o := range outs {
		total += o.n
	}
	out := newVecBuilder(vd.cols)
	out.reserve(total)
	for _, o := range outs {
		out.appendAll(o)
	}
	ctx.countBatches(nb)
	ctx.setBatches(nb)
	ctx.setParNote(fmt.Sprintf(" [batches=%d workers=%d]", nb, workers))
	return &relation{cols: r.cols, vec: out.build()}, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ---- batch hash join -----------------------------------------------------

// batchHashJoin is the vectorized inner equi-join: build-side key hashes
// are computed with type-specialized column loops, the hash table maps
// 64-bit key hashes to build row indices (collisions verified with keyEq
// semantics, so int 1 and float 1.0 still join), and the probe side is
// probed batch by batch, gathering matched index pairs into fresh output
// vectors. Probe order and within-key build order reproduce the row
// executor's output exactly.
func batchHashJoin(ctx *execCtx, l, r *relation, keys []equiKey, residual Expr) (*relation, error) {
	outCols := append(append([]colMeta{}, l.cols...), r.cols...)
	var resFn evalFn
	if residual != nil {
		var err error
		resFn, err = bindExpr(residual, outCols)
		if err != nil {
			return nil, err
		}
	}
	build, probe := r, l
	buildRight := true
	if l.vec.n < r.vec.n {
		build, probe = l, r
		buildRight = false
	}
	buildSlots := make([]int, len(keys))
	probeSlots := make([]int, len(keys))
	for i, k := range keys {
		if buildRight {
			buildSlots[i], probeSlots[i] = k.rSlot, k.lSlot
		} else {
			buildSlots[i], probeSlots[i] = k.lSlot, k.rSlot
		}
	}
	bvd, pvd := build.vec, probe.vec
	bs := ctx.batchSize()
	nbB := numBatches(bvd.n, bs)
	nbP := numBatches(pvd.n, bs)
	parallel := ctx.parWorkers() > 1 && bvd.n+pvd.n >= minParallelRows
	scr := ctx.borrowVecScratch()
	defer ctx.returnVecScratch(scr)

	// Phase 1: vectorized build-key hashing (into the reusable full-input
	// hash buffer; parallel hashers write disjoint ranges of it).
	if cap(scr.hash) < bvd.n {
		scr.hash = make([]uint64, bvd.n)
	}
	buildHash := scr.hash[:bvd.n]
	hashRange := func(b int) {
		lo := b * bs
		hi := minInt(lo+bs, bvd.n)
		seg := buildHash[lo:hi]
		for j := range seg {
			seg[j] = hashOffset64
		}
		for _, s := range buildSlots {
			bvd.cols[s].hashColRange(seg, lo, hi)
		}
	}
	if parallel && nbB > 1 {
		if _, err := ctx.par.run(nbB, func(b int) error {
			hashRange(b)
			return nil
		}); err != nil {
			return nil, err
		}
	} else {
		for b := 0; b < nbB; b++ {
			if err := ctx.cancelled(); err != nil {
				return nil, err
			}
			hashRange(b)
		}
	}

	// Phase 2: hash table from key hash to build row indices, in build
	// order (parallel executions partition it P ways).
	lb := newVecBuilder(l.vec.cols)
	rb := newVecBuilder(r.vec.cols)
	var workers, parts int
	if parallel {
		var err error
		workers, parts, err = batchProbeParallel(ctx, bvd, pvd, buildHash, buildSlots, probeSlots, buildRight, resFn, l, r, lb, rb, bs, nbP)
		if err != nil {
			return nil, err
		}
		ctx.par.stats.JoinPartitions.Add(int64(parts))
		ctx.par.stats.Morsels.Add(int64(nbB + nbP))
		ctx.setParNote(fmt.Sprintf(" [partitions=%d workers=%d]", parts, workers))
	} else {
		ht := make(map[uint64][]int32, bvd.n)
		for j := 0; j < bvd.n; j++ {
			if bvd.hasNullKey(j, buildSlots) {
				continue
			}
			ht[buildHash[j]] = append(ht[buildHash[j]], int32(j))
		}
		probeTask := newBatchProbeTask(bvd, pvd, buildSlots, probeSlots, buildRight, resFn, l, r, scr)
		lSel, rSel := scr.sel[:0], scr.selR[:0]
		var err error
		for b := 0; b < nbP; b++ {
			if err := ctx.cancelled(); err != nil {
				return nil, err
			}
			before := len(lSel)
			lSel, rSel, err = probeTask(lSel, rSel, func(h uint64) []int32 { return ht[h] }, b*bs, minInt(b*bs+bs, pvd.n))
			if err != nil {
				return nil, err
			}
			ctx.accountBatch(len(lSel)-before, len(outCols))
		}
		scr.sel, scr.selR = lSel, rSel
		lb.reserve(len(lSel))
		rb.reserve(len(rSel))
		lb.gather(l.vec.cols, lSel)
		rb.gather(r.vec.cols, rSel)
	}
	ctx.countBatches(nbB + nbP)
	ctx.setBatches(nbP)
	out := &vecData{n: lb.n, cols: append(lb.cols, rb.cols...)}
	return &relation{cols: outCols, vec: out}, nil
}

// newBatchProbeTask returns a closure probing rows [lo,hi) of the probe
// side against a hash-bucket lookup, appending matched (left, right) index
// pairs to the given accumulators in probe order. Task-local: the scratch
// (probe-hash buffer) and the residual scratch row are owned by one
// goroutine.
func newBatchProbeTask(bvd, pvd *vecData, buildSlots, probeSlots []int, buildRight bool, resFn evalFn, l, r *relation, scr *vecScratch) func(lSel, rSel []int32, bucket func(uint64) []int32, lo, hi int) ([]int32, []int32, error) {
	var scratch Row
	if resFn != nil {
		scratch = make(Row, len(l.cols)+len(r.cols))
	}
	lvd, rvd := l.vec, r.vec
	return func(lSel, rSel []int32, bucket func(uint64) []int32, lo, hi int) ([]int32, []int32, error) {
		hash := scr.batchHashes(pvd, probeSlots, lo, hi)
		for i := lo; i < hi; i++ {
			if pvd.hasNullKey(i, probeSlots) {
				continue
			}
			for _, bj := range bucket(hash[i-lo]) {
				if !keyEqAt(pvd, i, probeSlots, bvd, int(bj), buildSlots) {
					continue
				}
				var li, ri int32
				if buildRight {
					li, ri = int32(i), bj
				} else {
					li, ri = bj, int32(i)
				}
				if resFn != nil {
					for c := range lvd.cols {
						scratch[c] = lvd.cols[c].value(int(li))
					}
					off := len(lvd.cols)
					for c := range rvd.cols {
						scratch[off+c] = rvd.cols[c].value(int(ri))
					}
					v, err := resFn(scratch)
					if err != nil {
						return nil, nil, err
					}
					if v.IsNull() || !v.Bool() {
						continue
					}
				}
				lSel = append(lSel, li)
				rSel = append(rSel, ri)
			}
		}
		return lSel, rSel, nil
	}
}

// batchProbeParallel partitions the build hashes P ways and probes batch-
// wise in parallel, mirroring partitionedHashJoin: partition tables list
// build rows in build order, per-batch pair buffers concatenate in batch
// order, so the merged output is bit-identical to the sequential probe.
func batchProbeParallel(ctx *execCtx, bvd, pvd *vecData, buildHash []uint64, buildSlots, probeSlots []int, buildRight bool, resFn evalFn, l, r *relation, lb, rb *vecBuilder, bs, nbP int) (int, int, error) {
	parts := ctx.parWorkers()
	if parts > maxJoinPartitions {
		parts = maxJoinPartitions
	}
	if parts < 2 {
		parts = 2
	}
	tables := make([]map[uint64][]int32, parts)
	if _, err := ctx.par.run(parts, func(p int) error {
		ht := make(map[uint64][]int32, bvd.n/parts+1)
		for j := 0; j < bvd.n; j++ {
			if int(buildHash[j]%uint64(parts)) != p || bvd.hasNullKey(j, buildSlots) {
				continue
			}
			ht[buildHash[j]] = append(ht[buildHash[j]], int32(j))
		}
		tables[p] = ht
		return nil
	}); err != nil {
		return 0, 0, err
	}
	type pairs struct{ l, r []int32 }
	outs := make([]pairs, nbP)
	outCols := len(l.cols) + len(r.cols)
	workers, err := ctx.par.run(nbP, func(b int) error {
		probeTask := newBatchProbeTask(bvd, pvd, buildSlots, probeSlots, buildRight, resFn, l, r, &vecScratch{})
		lSel, rSel, err := probeTask(nil, nil, func(h uint64) []int32 { return tables[h%uint64(parts)][h] }, b*bs, minInt(b*bs+bs, pvd.n))
		if err != nil {
			return err
		}
		// The accumulators are task-local and this task is done with them.
		outs[b] = pairs{l: lSel, r: rSel}
		ctx.accountBatch(len(lSel), outCols)
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	total := 0
	for _, p := range outs {
		total += len(p.l)
	}
	lb.reserve(total)
	rb.reserve(total)
	for _, p := range outs {
		lb.gather(l.vec.cols, p.l)
		rb.gather(r.vec.cols, p.r)
	}
	return workers, parts, nil
}

// ---- batch distinct ------------------------------------------------------

// batchDistinct removes duplicate rows of a columnar relation, preserving
// first-occurrence order: per-row class hashes over all columns (NULLs
// included, matching appendRowKey) bucket candidate duplicates, keyEq
// verifies them, and the accumulated survivors gather once into
// exactly-sized fresh vectors.
func batchDistinct(ctx *execCtx, r *relation) (*relation, error) {
	vd := r.vec
	n := vd.n
	bs := ctx.batchSize()
	nb := numBatches(n, bs)
	slots := make([]int, len(vd.cols))
	for i := range slots {
		slots[i] = i
	}
	scr := ctx.borrowVecScratch()
	defer ctx.returnVecScratch(scr)
	buckets := make(map[uint64][]int32, n)
	sel := scr.sel[:0]
	for b := 0; b < nb; b++ {
		if err := ctx.cancelled(); err != nil {
			return nil, err
		}
		lo := b * bs
		hi := minInt(lo+bs, n)
		hash := scr.batchHashes(vd, slots, lo, hi)
		before := len(sel)
		for i := lo; i < hi; i++ {
			h := hash[i-lo]
			dup := false
			for _, k := range buckets[h] {
				if keyEqAt(vd, i, slots, vd, int(k), slots) {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			buckets[h] = append(buckets[h], int32(i))
			sel = append(sel, int32(i))
		}
		ctx.accountBatch(len(sel)-before, len(r.cols))
	}
	scr.sel = sel
	out := newVecBuilder(vd.cols)
	out.reserve(len(sel))
	out.gather(vd.cols, sel)
	ctx.countBatches(nb)
	ctx.setBatches(nb)
	return &relation{cols: r.cols, vec: out.build()}, nil
}

// distinctRelation dispatches DISTINCT to the vectorized or row-at-a-time
// implementation. The row path's output is accounted by the caller; the
// batch path accounts itself per batch.
func distinctRelation(ctx *execCtx, r *relation) (*relation, error) {
	if ctx.batchOn() && r.vec != nil {
		return batchDistinct(ctx, r)
	}
	r.matRows()
	return distinctRows(r), nil
}

// ---- batch aggregate -----------------------------------------------------

// batchAggregate is the vectorized grouping/aggregation path for the common
// shape: GROUP BY over plain columns, items that are group columns or
// single-column aggregates, no HAVING. Grouping hashes the key columns per
// batch (keyEq-verified, so group identity matches the row path's
// Value.Key() strings exactly) and keeps per-group row index lists; the
// aggregates then run over column vectors without materializing any input
// row. Returns ok=false when the statement needs the general row path.
func batchAggregate(ctx *execCtx, s *SelectStmt, input *relation) (*relation, bool, error) {
	vd := input.vec
	if s.Having != nil {
		return nil, false, nil
	}
	keySlots := make([]int, len(s.GroupBy))
	for i, g := range s.GroupBy {
		cr, ok := g.(*ColRef)
		if !ok {
			return nil, false, nil
		}
		slot := findCol(input.cols, cr.Table, cr.Name)
		if slot < 0 {
			return nil, false, nil
		}
		keySlots[i] = slot
	}
	// Validate items: plain group columns or single-column aggregates.
	type itemPlan struct {
		slot int       // >= 0: plain column
		agg  *FuncExpr // aggregate call otherwise
		arg  int       // aggregate argument slot; -1 for COUNT(*)
	}
	plans := make([]itemPlan, len(s.Items))
	var outCols []colMeta
	for ii, it := range s.Items {
		if it.Star {
			return nil, false, nil
		}
		name := strings.ToLower(it.Alias)
		table := ""
		if name == "" {
			if cr, ok := it.Expr.(*ColRef); ok {
				name = strings.ToLower(cr.Name)
				table = strings.ToLower(cr.Table)
			} else {
				name = strings.ToLower(it.Expr.String())
			}
		}
		switch x := it.Expr.(type) {
		case *ColRef:
			slot := findCol(input.cols, x.Table, x.Name)
			if slot < 0 {
				return nil, false, nil
			}
			plans[ii] = itemPlan{slot: slot, arg: -1}
		case *FuncExpr:
			if !isAggregateName(x.Name) {
				return nil, false, nil
			}
			p := itemPlan{slot: -1, agg: x, arg: -1}
			if x.Star {
				if x.Name != "COUNT" {
					// Let the row path produce its canonical error.
					return nil, false, nil
				}
			} else {
				if len(x.Args) != 1 {
					return nil, false, nil
				}
				cr, ok := x.Args[0].(*ColRef)
				if !ok {
					return nil, false, nil
				}
				slot := findCol(input.cols, cr.Table, cr.Name)
				if slot < 0 {
					return nil, false, nil
				}
				p.arg = slot
			}
			plans[ii] = p
		default:
			return nil, false, nil
		}
		outCols = append(outCols, colMeta{table: table, name: name})
	}

	// Vectorized grouping: class hashes per batch, keyEq verification.
	n := vd.n
	bs := ctx.batchSize()
	nb := numBatches(n, bs)
	type vGroup struct {
		first int32
		rows  []int32
	}
	var groups []vGroup
	buckets := make(map[uint64][]int32) // group ids per key hash
	scr := ctx.borrowVecScratch()
	defer ctx.returnVecScratch(scr)
	for b := 0; b < nb; b++ {
		if err := ctx.cancelled(); err != nil {
			return nil, false, err
		}
		lo := b * bs
		hi := minInt(lo+bs, n)
		hash := scr.batchHashes(vd, keySlots, lo, hi)
		for i := lo; i < hi; i++ {
			h := hash[i-lo]
			gid := int32(-1)
			for _, cand := range buckets[h] {
				if keyEqAt(vd, i, keySlots, vd, int(groups[cand].first), keySlots) {
					gid = cand
					break
				}
			}
			if gid < 0 {
				gid = int32(len(groups))
				groups = append(groups, vGroup{first: int32(i)})
				buckets[h] = append(buckets[h], gid)
			}
			groups[gid].rows = append(groups[gid].rows, int32(i))
		}
	}
	// Aggregates with no GROUP BY over empty input still yield one group.
	if len(s.GroupBy) == 0 && len(groups) == 0 {
		groups = append(groups, vGroup{first: -1})
	}

	out := &relation{cols: outCols, rows: make([]Row, 0, len(groups))}
	for _, g := range groups {
		nr := make(Row, len(plans))
		for ii, p := range plans {
			if p.agg == nil {
				if g.first < 0 {
					nr[ii] = Null
					continue
				}
				nr[ii] = vd.cols[p.slot].value(int(g.first))
				continue
			}
			v, err := computeVecAggregate(p.agg, p.arg, g.rows, vd)
			if err != nil {
				return nil, false, err
			}
			nr[ii] = v
		}
		out.rows = append(out.rows, nr)
	}
	ctx.countBatches(nb)
	ctx.setBatches(nb)
	return out, true, nil
}

// computeVecAggregate evaluates one aggregate call over a group's row
// indices, reading the argument column vector directly. Semantics mirror
// computeAggregate: NULLs are skipped, DISTINCT deduplicates by key class,
// SUM stays integer only when every input is an integer, MIN/MAX pick the
// first extremum under Compare.
func computeVecAggregate(f *FuncExpr, argSlot int, rows []int32, vd *vecData) (Value, error) {
	if f.Star {
		return NewInt(int64(len(rows))), nil
	}
	col := &vd.cols[argSlot]
	count := 0
	allInt := true
	var fi int64
	var ff float64
	var best Value
	haveBest := false
	var seenHash map[uint64][]Value // DISTINCT dedup: class hash + keyEq
	if f.Distinct {
		seenHash = make(map[uint64][]Value)
	}
	for _, ri := range rows {
		i := int(ri)
		if col.nulls.get(i) {
			continue
		}
		v := col.value(i)
		if f.Distinct {
			h := hashCellKey(v)
			dup := false
			for _, s := range seenHash[h] {
				if s.keyEq(v) {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			seenHash[h] = append(seenHash[h], v)
		}
		count++
		switch f.Name {
		case "SUM", "AVG":
			if v.Kind == KindInt {
				fi += v.I
				ff += float64(v.I)
			} else {
				allInt = false
				fv, ok := v.AsFloat()
				if !ok {
					return Null, fmt.Errorf("sqldb: %s over non-numeric value", f.Name)
				}
				ff += fv
			}
		case "MIN", "MAX":
			if !haveBest {
				best, haveBest = v, true
				continue
			}
			c, err := Compare(v, best)
			if err != nil {
				return Null, err
			}
			if (f.Name == "MIN" && c < 0) || (f.Name == "MAX" && c > 0) {
				best = v
			}
		}
	}
	switch f.Name {
	case "COUNT":
		return NewInt(int64(count)), nil
	case "SUM":
		if count == 0 {
			return Null, nil
		}
		if allInt {
			return NewInt(fi), nil
		}
		return NewFloat(ff), nil
	case "AVG":
		if count == 0 {
			return Null, nil
		}
		return NewFloat(ff / float64(count)), nil
	case "MIN", "MAX":
		if !haveBest {
			return Null, nil
		}
		return best, nil
	}
	return Null, fmt.Errorf("sqldb: unknown aggregate %s", f.Name)
}

// ---- batch projection ----------------------------------------------------

// vecProject applies a SELECT list that is a pure column selection to a
// columnar relation with zero copying: output vectors share the input's
// typed arrays and dictionaries. Returns ok=false when any item computes
// (the caller falls back to the row projection).
func vecProject(items []SelectItem, input *relation) (*relation, bool) {
	vd := input.vec
	var outCols []colMeta
	var picked []colvec
	for _, it := range items {
		if it.Star {
			q := strings.ToLower(it.Table)
			found := false
			for i, c := range input.cols {
				if q == "" || c.table == q {
					outCols = append(outCols, c)
					picked = append(picked, vd.cols[i])
					found = true
				}
			}
			if !found {
				return nil, false
			}
			continue
		}
		cr, ok := it.Expr.(*ColRef)
		if !ok {
			return nil, false
		}
		slot := findCol(input.cols, cr.Table, cr.Name)
		if slot < 0 {
			return nil, false
		}
		name := strings.ToLower(it.Alias)
		table := ""
		if name == "" {
			name = strings.ToLower(cr.Name)
			table = strings.ToLower(cr.Table)
		}
		outCols = append(outCols, colMeta{table: table, name: name})
		picked = append(picked, vd.cols[slot])
	}
	return &relation{cols: outCols, vec: &vecData{n: vd.n, cols: picked}}, true
}
