package sqldb

import (
	"strings"
	"testing"
)

// profile runs the statement through ProfileSelect and cross-checks the
// result against the uninstrumented ExecSelect path.
func profile(t *testing.T, db *Database, sql string) (*Result, *OpProfile) {
	t.Helper()
	s := MustParse(sql)
	res, prof, err := db.ProfileSelect(s)
	if err != nil {
		t.Fatalf("ProfileSelect %q: %v", sql, err)
	}
	plain, err := db.ExecSelect(MustParse(sql))
	if err != nil {
		t.Fatalf("ExecSelect %q: %v", sql, err)
	}
	if len(res.Rows) != len(plain.Rows) {
		t.Fatalf("profiled run returned %d rows, plain %d", len(res.Rows), len(plain.Rows))
	}
	return res, prof
}

func TestProfileJoinQuery(t *testing.T) {
	db := testDB(t, ProfileHashJoin)
	res, prof := profile(t, db,
		"SELECT e.name, p.size FROM TEmployee e JOIN TSellsProduct s ON e.id = s.id JOIN TProduct p ON s.product = p.product")

	if prof.Op != "query" || prof.Rows != len(res.Rows) {
		t.Fatalf("root = %s rows=%d, want query rows=%d", prof.Op, prof.Rows, len(res.Rows))
	}
	// Three base scans with the true table cardinalities.
	scans := map[string]int{"TEmployee": 3, "TSellsProduct": 4, "TProduct": 4}
	sel := prof.Find("select")
	if sel == nil {
		t.Fatalf("no select node:\n%s", prof.Render())
	}
	seen := 0
	var walk func(*OpProfile)
	var joins []*OpProfile
	walk = func(p *OpProfile) {
		if p.Op == "scan" {
			if want, ok := scans[p.Detail]; !ok || p.Rows != want {
				t.Errorf("scan %s rows=%d, want %d", p.Detail, p.Rows, scans[p.Detail])
			}
			seen++
		}
		if strings.Contains(p.Op, "join") {
			joins = append(joins, p)
		}
		for _, c := range p.Children {
			walk(c)
		}
	}
	walk(prof)
	if seen != 3 {
		t.Fatalf("saw %d scans, want 3:\n%s", seen, prof.Render())
	}
	if len(joins) != 2 {
		t.Fatalf("saw %d joins, want 2:\n%s", len(joins), prof.Render())
	}
	for _, j := range joins {
		if j.Op != "hash join" {
			t.Errorf("join algo = %s, want hash join", j.Op)
		}
		if j.LeftRows < 0 || j.RightRows < 0 {
			t.Errorf("join missing input cardinalities: %+v", j)
		}
		// Hash join builds on the smaller side and probes with the other.
		small, big := j.LeftRows, j.RightRows
		if small > big {
			small, big = big, small
		}
		if j.BuildRows != small || j.Probes != big {
			t.Errorf("join build=%d probes=%d, want build=%d probes=%d", j.BuildRows, j.Probes, small, big)
		}
	}
	// The final join's output feeds the project untouched.
	last := joins[len(joins)-1]
	proj := prof.Find("project")
	if proj == nil || proj.Rows != last.Rows {
		t.Fatalf("project rows inconsistent with final join:\n%s", prof.Render())
	}
}

func TestProfileMergeJoin(t *testing.T) {
	db := testDB(t, ProfileSortMerge)
	_, prof := profile(t, db,
		"SELECT e.name FROM TEmployee e JOIN TSellsProduct s ON e.id = s.id")
	j := prof.Find("merge join")
	if j == nil {
		t.Fatalf("no merge join node:\n%s", prof.Render())
	}
	if j.BuildRows != j.LeftRows+j.RightRows {
		t.Fatalf("merge join build=%d, want %d (both sides sorted)", j.BuildRows, j.LeftRows+j.RightRows)
	}
}

func TestProfileFilterAndLimit(t *testing.T) {
	db := testDB(t, ProfileHashJoin)
	_, prof := profile(t, db,
		"SELECT name FROM TEmployee WHERE branch = 'B1' ORDER BY name LIMIT 1")
	f := prof.Find("filter")
	if f == nil {
		t.Fatalf("no filter node:\n%s", prof.Render())
	}
	if f.RowsIn != 3 || f.Rows != 2 {
		t.Fatalf("filter %d → %d, want 3 → 2", f.RowsIn, f.Rows)
	}
	l := prof.Find("limit")
	if l == nil || l.RowsIn != 2 || l.Rows != 1 {
		t.Fatalf("limit node wrong:\n%s", prof.Render())
	}
	if s := prof.Find("sort"); s == nil || s.Rows != 2 {
		t.Fatalf("sort node wrong:\n%s", prof.Render())
	}
}

func TestProfileUnionRowsSum(t *testing.T) {
	db := testDB(t, ProfileHashJoin)
	res, prof := profile(t, db,
		"SELECT id FROM TEmployee UNION ALL SELECT id FROM TSellsProduct")
	u := prof.Find("union all")
	if u == nil {
		t.Fatalf("no union node:\n%s", prof.Render())
	}
	var sum int
	for _, c := range u.Children {
		if c.Op == "select" {
			sum += c.Rows
		}
	}
	if sum != u.Rows || u.Rows != len(res.Rows) {
		t.Fatalf("union rows=%d, arm sum=%d, result=%d — must agree:\n%s",
			u.Rows, sum, len(res.Rows), prof.Render())
	}

	// UNION (distinct) reports the pre-dedup concatenation on the union
	// node and the reduction on a distinct sibling.
	_, prof2 := profile(t, db, "SELECT id FROM TEmployee UNION SELECT id FROM TSellsProduct")
	u2 := prof2.Find("union")
	d2 := prof2.Find("distinct")
	if u2 == nil || d2 == nil {
		t.Fatalf("union/distinct missing:\n%s", prof2.Render())
	}
	if d2.RowsIn != u2.Rows {
		t.Fatalf("distinct input %d != union output %d", d2.RowsIn, u2.Rows)
	}
}

func TestProfileSubqueryCached(t *testing.T) {
	db := testDB(t, ProfileHashJoin)
	_, prof := profile(t, db,
		"SELECT a.id FROM (SELECT id FROM TEmployee) a JOIN (SELECT id FROM TEmployee) b ON a.id = b.id")
	var fresh, cached int
	var walk func(*OpProfile)
	walk = func(p *OpProfile) {
		if p.Op == "subquery" {
			if strings.Contains(p.Detail, "cached") {
				cached++
			} else {
				fresh++
			}
		}
		for _, c := range p.Children {
			walk(c)
		}
	}
	walk(prof)
	if fresh != 1 || cached != 1 {
		t.Fatalf("subquery nodes fresh=%d cached=%d, want 1/1:\n%s", fresh, cached, prof.Render())
	}
}

func TestProfileRender(t *testing.T) {
	db := testDB(t, ProfileHashJoin)
	_, prof := profile(t, db,
		"SELECT e.name FROM TEmployee e JOIN TSellsProduct s ON e.id = s.id WHERE e.branch = 'B1'")
	out := prof.Render()
	for _, want := range []string{"query", "└─", "scan TEmployee", "hash join", "build=", "probes=", "rows"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if prof.TotalOps() < 4 {
		t.Fatalf("TotalOps = %d, want >= 4", prof.TotalOps())
	}
}

func TestProfileDisabledIsNilSafe(t *testing.T) {
	// The plain ExecSelect path runs the same instrumented code with a nil
	// profile node; every hook must no-op.
	var p *OpProfile
	p.SetRows(1)
	p.SetInOut(1, 2)
	p.SetJoin(1, 2, 3, 4, 5)
	p.SetDetail("x")
	if p.TotalOps() != 0 || p.TotalRows() != 0 || p.Find("scan") != nil || p.Render() != "" {
		t.Fatal("nil OpProfile must be inert")
	}
	ctx := &execCtx{}
	if n := ctx.addOp("scan", "t"); n != nil {
		t.Fatal("addOp without profiling must return nil")
	}
	n, restore := ctx.pushOp("select", "")
	restore()
	if n != nil {
		t.Fatal("pushOp without profiling must return nil")
	}
}
