package sqldb

// Profile selects the planner/executor behaviour of a Database. The NPD
// benchmark paper evaluates the same OBDA frontend over MySQL and
// PostgreSQL; this engine reproduces that comparison with two profiles of
// one code base.
type Profile uint8

const (
	// ProfileHashJoin is the "MySQL-like" profile: joins are executed in
	// the order they are written (left-deep) using hash joins on the
	// available equality predicates, nested loops otherwise.
	ProfileHashJoin Profile = iota
	// ProfileSortMerge is the "PostgreSQL-like" profile: the planner
	// greedily reorders joins by estimated input cardinality and executes
	// them as sort-merge joins.
	ProfileSortMerge
)

func (p Profile) String() string {
	switch p {
	case ProfileHashJoin:
		return "hashjoin"
	case ProfileSortMerge:
		return "sortmerge"
	}
	return "unknown"
}
