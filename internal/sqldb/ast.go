package sqldb

import (
	"fmt"
	"strings"
)

// ---- SQL expression AST ----

// Expr is a SQL scalar expression.
type Expr interface {
	fmt.Stringer
	exprNode()
}

// ColRef references a column, optionally qualified by a table alias.
type ColRef struct {
	Table string // optional qualifier
	Name  string
	// resolved slot within the executor's row layout; set by binding.
	slot int
}

// Lit is a literal value.
type Lit struct {
	Val Value
}

// BinOp kinds.
type BinOpKind uint8

// Binary operators.
const (
	OpEq BinOpKind = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpConcat
)

func (k BinOpKind) String() string {
	switch k {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpConcat:
		return "||"
	}
	return "?"
}

// BinOp is a binary operation.
type BinOp struct {
	Op   BinOpKind
	L, R Expr
}

// NotExpr is logical negation.
type NotExpr struct {
	E Expr
}

// IsNullExpr tests e IS [NOT] NULL.
type IsNullExpr struct {
	E      Expr
	Negate bool
}

// InExpr tests e IN (list).
type InExpr struct {
	E      Expr
	List   []Expr
	Negate bool
}

// LikeExpr is the SQL LIKE predicate with % and _ wildcards.
type LikeExpr struct {
	E       Expr
	Pattern Expr
	Negate  bool
}

// FuncExpr is a scalar or aggregate function call.
type FuncExpr struct {
	Name     string // upper-cased
	Args     []Expr
	Star     bool // COUNT(*)
	Distinct bool // COUNT(DISTINCT x)
}

func (*ColRef) exprNode()     {}
func (*Lit) exprNode()        {}
func (*BinOp) exprNode()      {}
func (*NotExpr) exprNode()    {}
func (*IsNullExpr) exprNode() {}
func (*InExpr) exprNode()     {}
func (*LikeExpr) exprNode()   {}
func (*FuncExpr) exprNode()   {}

func (c *ColRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

func (l *Lit) String() string {
	if l.Val.Kind == KindString {
		return "'" + strings.ReplaceAll(l.Val.S, "'", "''") + "'"
	}
	return l.Val.String()
}

func (b *BinOp) String() string {
	return "(" + b.L.String() + " " + b.Op.String() + " " + b.R.String() + ")"
}

func (n *NotExpr) String() string { return "NOT (" + n.E.String() + ")" }

func (e *IsNullExpr) String() string {
	if e.Negate {
		return e.E.String() + " IS NOT NULL"
	}
	return e.E.String() + " IS NULL"
}

func (e *InExpr) String() string {
	items := make([]string, len(e.List))
	for i, it := range e.List {
		items[i] = it.String()
	}
	op := " IN ("
	if e.Negate {
		op = " NOT IN ("
	}
	return e.E.String() + op + strings.Join(items, ", ") + ")"
}

func (e *LikeExpr) String() string {
	op := " LIKE "
	if e.Negate {
		op = " NOT LIKE "
	}
	return e.E.String() + op + e.Pattern.String()
}

func (f *FuncExpr) String() string {
	if f.Star {
		return f.Name + "(*)"
	}
	args := make([]string, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.String()
	}
	d := ""
	if f.Distinct {
		d = "DISTINCT "
	}
	return f.Name + "(" + d + strings.Join(args, ", ") + ")"
}

// ---- Query AST ----

// SelectItem is one projection item.
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool   // SELECT * or t.*
	Table string // qualifier for t.*
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// JoinKind distinguishes the supported join flavours.
type JoinKind uint8

// Join kinds.
const (
	JoinInner JoinKind = iota
	JoinLeft
	JoinCross
	JoinNatural
)

func (k JoinKind) String() string {
	switch k {
	case JoinLeft:
		return "LEFT"
	case JoinCross:
		return "CROSS"
	case JoinNatural:
		return "NATURAL"
	}
	return "INNER"
}

// TableRef is a FROM-clause item.
type TableRef interface{ tableRefNode() }

// BaseTable references a stored table, optionally aliased.
type BaseTable struct {
	Name  string
	Alias string
}

// SubqueryTable is a derived table: (SELECT ...) AS alias.
type SubqueryTable struct {
	Query *SelectStmt
	Alias string
}

// JoinRef combines two table refs.
type JoinRef struct {
	Kind JoinKind
	L, R TableRef
	On   Expr // nil for cross/natural
}

func (*BaseTable) tableRefNode()     {}
func (*SubqueryTable) tableRefNode() {}
func (*JoinRef) tableRefNode()       {}

// SelectStmt is a (possibly compound) SELECT statement. Compound statements
// chain via Union.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef // comma list (implicit cross joins)
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int // -1 if absent
	Offset   int

	Union    *SelectStmt // next arm of a UNION, nil if none
	UnionAll bool        // whether the link to Union is UNION ALL
}

// NewSelect returns a SELECT with no LIMIT.
func NewSelect() *SelectStmt { return &SelectStmt{Limit: -1} }

// String renders the statement back to SQL (diagnostics, mapping dumps and
// the paper's Simplicity-U metric rely on it).
func (s *SelectStmt) String() string {
	var sb strings.Builder
	s.writeOne(&sb)
	for u := s.Union; u != nil; u = u.Union {
		if s.UnionAll {
			sb.WriteString(" UNION ALL ")
		} else {
			sb.WriteString(" UNION ")
		}
		u.writeOne(&sb)
	}
	return sb.String()
}

func (s *SelectStmt) writeOne(sb *strings.Builder) {
	sb.WriteString("SELECT ")
	if s.Distinct {
		sb.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		if it.Star {
			if it.Table != "" {
				sb.WriteString(it.Table + ".*")
			} else {
				sb.WriteByte('*')
			}
			continue
		}
		sb.WriteString(it.Expr.String())
		if it.Alias != "" {
			sb.WriteString(" AS " + it.Alias)
		}
	}
	if len(s.From) > 0 {
		sb.WriteString(" FROM ")
		for i, tr := range s.From {
			if i > 0 {
				sb.WriteString(", ")
			}
			writeTableRef(sb, tr)
		}
	}
	if s.Where != nil {
		sb.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(g.String())
		}
	}
	if s.Having != nil {
		sb.WriteString(" HAVING " + s.Having.String())
	}
	if len(s.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(o.Expr.String())
			if o.Desc {
				sb.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(sb, " LIMIT %d", s.Limit)
	}
	if s.Offset > 0 {
		fmt.Fprintf(sb, " OFFSET %d", s.Offset)
	}
}

func writeTableRef(sb *strings.Builder, tr TableRef) {
	switch t := tr.(type) {
	case *BaseTable:
		sb.WriteString(t.Name)
		if t.Alias != "" && !strings.EqualFold(t.Alias, t.Name) {
			sb.WriteString(" AS " + t.Alias)
		}
	case *SubqueryTable:
		sb.WriteString("(" + t.Query.String() + ") AS " + t.Alias)
	case *JoinRef:
		writeTableRef(sb, t.L)
		switch t.Kind {
		case JoinInner:
			sb.WriteString(" JOIN ")
		case JoinLeft:
			sb.WriteString(" LEFT JOIN ")
		case JoinCross:
			sb.WriteString(" CROSS JOIN ")
		case JoinNatural:
			sb.WriteString(" NATURAL JOIN ")
		}
		writeTableRef(sb, t.R)
		if t.On != nil {
			sb.WriteString(" ON " + t.On.String())
		}
	}
}

// Metrics used by the paper's "Simplicity U-Query" quality measure
// (Table 1): joins, left joins, unions and inner queries of the unfolded SQL.

// SQLMetrics summarizes structural complexity of a SQL statement.
type SQLMetrics struct {
	Joins        int
	LeftJoins    int
	Unions       int
	InnerQueries int
}

// Metrics computes the structural complexity of s (recursively).
func (s *SelectStmt) Metrics() SQLMetrics {
	var m SQLMetrics
	for cur := s; cur != nil; cur = cur.Union {
		if cur != s {
			m.Unions++
		}
		for _, tr := range cur.From {
			countRef(tr, &m)
		}
		// Comma-separated FROM items are implicit joins.
		if len(cur.From) > 1 {
			m.Joins += len(cur.From) - 1
		}
	}
	return m
}

func countRef(tr TableRef, m *SQLMetrics) {
	switch t := tr.(type) {
	case *SubqueryTable:
		m.InnerQueries++
		sub := t.Query.Metrics()
		m.Joins += sub.Joins
		m.LeftJoins += sub.LeftJoins
		m.Unions += sub.Unions
		m.InnerQueries += sub.InnerQueries
	case *JoinRef:
		if t.Kind == JoinLeft {
			m.LeftJoins++
		} else {
			m.Joins++
		}
		countRef(t.L, m)
		countRef(t.R, m)
	}
}
