package sqldb

import (
	"testing"
)

// FuzzParse drives the SQL parser (lexer, statement grammar, and the full
// expression grammar under it) with arbitrary input and exercises the
// downstream surfaces on every successfully parsed statement: the String
// rendering, a re-parse of that rendering (the parser must accept its own
// output), and the statement metrics the paper's query classification
// reads. None of it may panic, and the round trip must render identically
// — String is the canonical form, so parse(String(s)) must reproduce it.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT a FROM t",
		"SELECT t.a, u.b FROM t JOIN u ON t.id = u.id WHERE t.a > 3",
		"SELECT a FROM t LEFT JOIN u ON t.id = u.id",
		"SELECT DISTINCT a, b FROM t ORDER BY a DESC, b LIMIT 10",
		"SELECT a FROM t WHERE a IN (1, 2, 3) AND b IS NOT NULL",
		"SELECT a FROM t WHERE name LIKE 'well%' OR NOT (x = 1)",
		"SELECT count(*) FROM t GROUP BY a HAVING count(*) > 2",
		"SELECT a FROM t UNION SELECT b FROM u",
		"SELECT a FROM (SELECT a FROM t) s",
		"SELECT * FROM t",
		"SELECT a + b * -c FROM t WHERE x BETWEEN 1 AND 2",
		"SELECT 'it''s' FROM t",
		"SELECT a FROM t;",
		"",
		"SELECT",
		"SELECT FROM WHERE",
		"SELECT a FROM t WHERE (",
		"SELECT a FROM t ORDER BY",
		"'unterminated",
		"SELECT a FROM t -- comment",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := Parse(src)
		if err != nil {
			return
		}
		rendered := stmt.String()
		again, err := Parse(rendered)
		if err != nil {
			t.Fatalf("re-parse of own rendering failed\ninput:    %q\nrendered: %q\nerror:    %v", src, rendered, err)
		}
		if got := again.String(); got != rendered {
			t.Fatalf("rendering not a fixed point\ninput:  %q\nfirst:  %q\nsecond: %q", src, rendered, got)
		}
		_ = stmt.Metrics()
	})
}
