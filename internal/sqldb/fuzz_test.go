package sqldb

import (
	"testing"
)

// FuzzParse drives the SQL parser (lexer, statement grammar, and the full
// expression grammar under it) with arbitrary input and exercises the
// downstream surfaces on every successfully parsed statement: the String
// rendering, a re-parse of that rendering (the parser must accept its own
// output), and the statement metrics the paper's query classification
// reads. None of it may panic, and the round trip must render identically
// — String is the canonical form, so parse(String(s)) must reproduce it.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT a FROM t",
		"SELECT t.a, u.b FROM t JOIN u ON t.id = u.id WHERE t.a > 3",
		"SELECT a FROM t LEFT JOIN u ON t.id = u.id",
		"SELECT DISTINCT a, b FROM t ORDER BY a DESC, b LIMIT 10",
		"SELECT a FROM t WHERE a IN (1, 2, 3) AND b IS NOT NULL",
		"SELECT a FROM t WHERE name LIKE 'well%' OR NOT (x = 1)",
		"SELECT count(*) FROM t GROUP BY a HAVING count(*) > 2",
		"SELECT a FROM t UNION SELECT b FROM u",
		"SELECT a FROM (SELECT a FROM t) s",
		"SELECT * FROM t",
		"SELECT a + b * -c FROM t WHERE x BETWEEN 1 AND 2",
		"SELECT 'it''s' FROM t",
		"SELECT a FROM t;",
		"",
		"SELECT",
		"SELECT FROM WHERE",
		"SELECT a FROM t WHERE (",
		"SELECT a FROM t ORDER BY",
		"'unterminated",
		"SELECT a FROM t -- comment",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := Parse(src)
		if err != nil {
			return
		}
		rendered := stmt.String()
		again, err := Parse(rendered)
		if err != nil {
			t.Fatalf("re-parse of own rendering failed\ninput:    %q\nrendered: %q\nerror:    %v", src, rendered, err)
		}
		if got := again.String(); got != rendered {
			t.Fatalf("rendering not a fixed point\ninput:  %q\nfirst:  %q\nsecond: %q", src, rendered, got)
		}
		_ = stmt.Metrics()
	})
}

// FuzzDictRoundTrip drives the columnar string dictionary with arbitrary
// (and aliasing) values: encode must be a bijection onto first-appearance
// codes, decode must return the exact payload back, lookup must agree with
// encode without assigning, and the precomputed hash table must match a
// direct hash of the stored string — the invariant vectorized joins and
// DISTINCT rely on when they compare hashes instead of payloads.
func FuzzDictRoundTrip(f *testing.F) {
	f.Add("", "", "")
	f.Add("a", "b", "a")
	f.Add("alpha", "alpha", "beta")
	f.Add("npd:wellbore/1", "npd:wellbore/12", "npd:wellbore/1")
	f.Add("\x00\xff", "üñîçødé", "\x00\xff")
	f.Fuzz(func(t *testing.T, a, b, c string) {
		d := newStrDict()
		inputs := []string{a, b, c, a, b}
		codes := make([]uint32, len(inputs))
		want := make(map[string]uint32)
		for i, s := range inputs {
			codes[i] = d.encode(s)
			if prev, seen := want[s]; seen {
				if codes[i] != prev {
					t.Fatalf("encode(%q) unstable: %d then %d", s, prev, codes[i])
				}
			} else {
				want[s] = codes[i]
			}
		}
		if d.size() != len(want) {
			t.Fatalf("size = %d, want %d distinct", d.size(), len(want))
		}
		for s, code := range want {
			if got := d.decode(code); got != s {
				t.Fatalf("decode(encode(%q)) = %q", s, got)
			}
			lc, ok := d.lookup(s)
			if !ok || lc != code {
				t.Fatalf("lookup(%q) = (%d, %v), want (%d, true)", s, lc, ok, code)
			}
			if d.hashes[code] != hashString(d.vals[code]) {
				t.Fatalf("precomputed hash for %q diverges from hashString", s)
			}
		}
		if _, ok := d.lookup(a + b + c + "\x01absent"); ok {
			t.Fatal("lookup invented a code for an unseen value")
		}
	})
}
