// Package sqldb implements an embedded, in-memory relational database
// engine: typed storage with primary/foreign/unique constraints, hash and
// ordered indexes, a SQL lexer/parser for the select-project-join-union
// fragment used by OBDA mappings, a rule-based planner with two execution
// profiles, and a Volcano-style iterator executor.
//
// It is the substitute for the MySQL/PostgreSQL backends used in the NPD
// benchmark paper (EDBT 2015): the same engine runs under two planner
// profiles (ProfileHashJoin, ProfileSortMerge) so that the paper's
// two-backend comparison can be reproduced in-process.
package sqldb

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind identifies the runtime type of a Value.
type Kind uint8

// Value kinds. KindNull is the zero value so that a zero Value is NULL.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
	KindDate // days since 1970-01-01, stored in I
	KindGeometry
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "STRING"
	case KindBool:
		return "BOOL"
	case KindDate:
		return "DATE"
	case KindGeometry:
		return "GEOMETRY"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Point is a 2-D coordinate used by Geometry values.
type Point struct {
	X, Y float64
}

// Geometry is a polygon (closed ring) or point sequence. It exists so that
// the VIG generator can exercise the paper's geometry handling: bounding-box
// analysis and in-region generation of fresh values.
type Geometry struct {
	Points []Point
}

// BoundingBox returns the minimal axis-aligned rectangle enclosing g.
func (g *Geometry) BoundingBox() (minX, minY, maxX, maxY float64) {
	if g == nil || len(g.Points) == 0 {
		return 0, 0, 0, 0
	}
	minX, minY = math.Inf(1), math.Inf(1)
	maxX, maxY = math.Inf(-1), math.Inf(-1)
	for _, p := range g.Points {
		minX = math.Min(minX, p.X)
		maxX = math.Max(maxX, p.X)
		minY = math.Min(minY, p.Y)
		maxY = math.Max(maxY, p.Y)
	}
	return minX, minY, maxX, maxY
}

// Valid reports whether the polygon is closed and non-self-intersecting,
// the constraint MySQL enforces on POLYGON columns (paper, Sect. 5.1).
func (g *Geometry) Valid() bool {
	n := len(g.Points)
	if n < 4 {
		return false
	}
	if g.Points[0] != g.Points[n-1] {
		return false
	}
	// Check pairwise non-adjacent segment intersection (O(n^2); polygons in
	// this workload are small).
	seg := g.Points
	for i := 0; i < n-1; i++ {
		for j := i + 2; j < n-1; j++ {
			if i == 0 && j == n-2 {
				continue // first and last segments share a vertex
			}
			if segmentsIntersect(seg[i], seg[i+1], seg[j], seg[j+1]) {
				return false
			}
		}
	}
	return true
}

func segmentsIntersect(a, b, c, d Point) bool {
	o1 := orient(a, b, c)
	o2 := orient(a, b, d)
	o3 := orient(c, d, a)
	o4 := orient(c, d, b)
	return o1*o2 < 0 && o3*o4 < 0
}

func orient(a, b, c Point) int {
	v := (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	}
	return 0
}

func (g *Geometry) String() string {
	var sb strings.Builder
	sb.WriteString("POLYGON(")
	for i, p := range g.Points {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%g %g", p.X, p.Y)
	}
	sb.WriteByte(')')
	return sb.String()
}

// Value is a dynamically typed SQL value. The zero Value is NULL.
type Value struct {
	Kind Kind
	I    int64     // KindInt, KindBool (0/1), KindDate
	F    float64   // KindFloat
	S    string    // KindString
	G    *Geometry // KindGeometry
}

// Null is the SQL NULL value.
var Null = Value{}

// NewInt returns an integer value.
func NewInt(i int64) Value { return Value{Kind: KindInt, I: i} }

// NewFloat returns a floating-point value.
func NewFloat(f float64) Value { return Value{Kind: KindFloat, F: f} }

// NewString returns a string value.
func NewString(s string) Value { return Value{Kind: KindString, S: s} }

// NewBool returns a boolean value.
func NewBool(b bool) Value {
	if b {
		return Value{Kind: KindBool, I: 1}
	}
	return Value{Kind: KindBool}
}

// NewDate returns a date value from days since the Unix epoch.
func NewDate(days int64) Value { return Value{Kind: KindDate, I: days} }

// NewGeometry returns a geometry value.
func NewGeometry(g *Geometry) Value { return Value{Kind: KindGeometry, G: g} }

// ParseDate converts "YYYY-MM-DD" to a date value.
func ParseDate(s string) (Value, error) {
	parts := strings.Split(s, "-")
	if len(parts) != 3 {
		return Null, fmt.Errorf("sqldb: bad date %q", s)
	}
	y, err1 := strconv.Atoi(parts[0])
	m, err2 := strconv.Atoi(parts[1])
	d, err3 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil || err3 != nil || m < 1 || m > 12 || d < 1 || d > 31 {
		return Null, fmt.Errorf("sqldb: bad date %q", s)
	}
	return NewDate(daysFromCivil(y, m, d)), nil
}

// daysFromCivil converts a proleptic Gregorian date to days since 1970-01-01
// (Howard Hinnant's algorithm).
func daysFromCivil(y, m, d int) int64 {
	if m <= 2 {
		y--
	}
	era := y / 400
	if y < 0 && y%400 != 0 {
		era--
	}
	yoe := y - era*400
	mp := (m + 9) % 12
	doy := (153*mp+2)/5 + d - 1
	doe := yoe*365 + yoe/4 - yoe/100 + doy
	return int64(era)*146097 + int64(doe) - 719468
}

// civilFromDays is the inverse of daysFromCivil.
func civilFromDays(z int64) (y, m, d int) {
	z += 719468
	era := z / 146097
	if z < 0 && z%146097 != 0 {
		era--
	}
	doe := z - era*146097
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365
	yy := yoe + era*400
	doy := doe - (365*yoe + yoe/4 - yoe/100)
	mp := (5*doy + 2) / 153
	d = int(doy - (153*mp+2)/5 + 1)
	m = int((mp + 2) % 12)
	m++
	if mp >= 10 {
		yy++
	}
	return int(yy), m, d
}

// IsNull reports whether v is SQL NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// Bool reports the truth value of a boolean; NULL and non-bools are false.
func (v Value) Bool() bool { return v.Kind == KindBool && v.I != 0 }

// AsFloat coerces numeric values to float64.
func (v Value) AsFloat() (float64, bool) {
	switch v.Kind {
	case KindInt, KindDate:
		return float64(v.I), true
	case KindFloat:
		return v.F, true
	}
	return 0, false
}

// AsInt coerces numeric values to int64.
func (v Value) AsInt() (int64, bool) {
	switch v.Kind {
	case KindInt, KindDate, KindBool:
		return v.I, true
	case KindFloat:
		return int64(v.F), true
	}
	return 0, false
}

// String renders the value in SQL-literal style.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	case KindBool:
		if v.I != 0 {
			return "TRUE"
		}
		return "FALSE"
	case KindDate:
		y, m, d := civilFromDays(v.I)
		return fmt.Sprintf("%04d-%02d-%02d", y, m, d)
	case KindGeometry:
		return v.G.String()
	}
	return "?"
}

// Key encodes the value into a string usable as a hash-index or
// duplicate-detection key. Distinct values yield distinct keys within and
// across numeric kinds that compare equal (1 and 1.0 share a key).
func (v Value) Key() string {
	switch v.Kind {
	case KindNull:
		return "\x00N"
	case KindInt:
		return "\x01" + strconv.FormatInt(v.I, 10)
	case KindFloat:
		if v.F == math.Trunc(v.F) && math.Abs(v.F) < 1e15 {
			return "\x01" + strconv.FormatInt(int64(v.F), 10)
		}
		return "\x02" + strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return "\x03" + v.S
	case KindBool:
		return "\x04" + strconv.FormatInt(v.I, 10)
	case KindDate:
		return "\x05" + strconv.FormatInt(v.I, 10)
	case KindGeometry:
		return "\x06" + v.G.String()
	}
	return "\x07"
}

// Compare totally orders two non-NULL values; numeric kinds are mutually
// comparable (int/float/date), all other comparisons require equal kinds.
// NULL compares less than everything (used only for sorting; SQL comparison
// semantics with NULL are handled in the expression evaluator).
func Compare(a, b Value) (int, error) {
	if a.IsNull() || b.IsNull() {
		switch {
		case a.IsNull() && b.IsNull():
			return 0, nil
		case a.IsNull():
			return -1, nil
		default:
			return 1, nil
		}
	}
	if af, ok := a.AsFloat(); ok {
		if bf, ok2 := b.AsFloat(); ok2 {
			switch {
			case af < bf:
				return -1, nil
			case af > bf:
				return 1, nil
			}
			return 0, nil
		}
	}
	if a.Kind != b.Kind {
		return 0, fmt.Errorf("sqldb: cannot compare %s with %s", a.Kind, b.Kind)
	}
	switch a.Kind {
	case KindString:
		return strings.Compare(a.S, b.S), nil
	case KindBool:
		switch {
		case a.I < b.I:
			return -1, nil
		case a.I > b.I:
			return 1, nil
		}
		return 0, nil
	case KindGeometry:
		return strings.Compare(a.G.String(), b.G.String()), nil
	}
	return 0, fmt.Errorf("sqldb: cannot compare %s values", a.Kind)
}

// Equal reports whether two values are equal under SQL comparison (NULL is
// not equal to anything, including NULL).
func Equal(a, b Value) bool {
	if a.IsNull() || b.IsNull() {
		return false
	}
	c, err := Compare(a, b)
	return err == nil && c == 0
}

// Row is a tuple of values.
type Row []Value

// Clone returns a deep-enough copy of the row (Geometry payloads are shared;
// they are immutable by convention).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// RowKey encodes the projection of row r on columns cols as a composite key.
func RowKey(r Row, cols []int) string {
	var sb strings.Builder
	for _, c := range cols {
		k := r[c].Key()
		sb.WriteString(strconv.Itoa(len(k)))
		sb.WriteByte(':')
		sb.WriteString(k)
	}
	return sb.String()
}

// appendKey appends the Key() encoding of v to buf without materializing a
// string: two values append equal bytes exactly when their Key() strings
// are equal. The dedup path hashes these bytes out of a reusable buffer
// instead of building one string per row.
func (v Value) appendKey(buf []byte) []byte {
	switch v.Kind {
	case KindNull:
		return append(buf, 0x00, 'N')
	case KindInt:
		return strconv.AppendInt(append(buf, 0x01), v.I, 10)
	case KindFloat:
		if v.F == math.Trunc(v.F) && math.Abs(v.F) < 1e15 {
			return strconv.AppendInt(append(buf, 0x01), int64(v.F), 10)
		}
		return strconv.AppendFloat(append(buf, 0x02), v.F, 'g', -1, 64)
	case KindString:
		return append(append(buf, 0x03), v.S...)
	case KindBool:
		return strconv.AppendInt(append(buf, 0x04), v.I, 10)
	case KindDate:
		return strconv.AppendInt(append(buf, 0x05), v.I, 10)
	case KindGeometry:
		return append(append(buf, 0x06), v.G.String()...)
	}
	return append(buf, 0x07)
}

// keyEq reports whether two values have equal Key() encodings — the dedup
// equivalence (NULLs match, 1 and 1.0 match, kinds otherwise separate) —
// without allocating either key.
func (v Value) keyEq(o Value) bool {
	vi, vIsInt := v.intClass()
	oi, oIsInt := o.intClass()
	if vIsInt || oIsInt {
		return vIsInt && oIsInt && vi == oi
	}
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case KindNull:
		return true
	case KindFloat:
		// Equal non-integral floats format identically; NaN always
		// formats as "NaN" so NaNs share a key.
		return v.F == o.F || (math.IsNaN(v.F) && math.IsNaN(o.F))
	case KindString:
		return v.S == o.S
	case KindBool, KindDate:
		return v.I == o.I
	case KindGeometry:
		return v.G.String() == o.G.String()
	}
	return false
}

// intClass reports whether the value keys into the shared integer class
// (\x01 prefix): integers, and floats with small integral values.
func (v Value) intClass() (int64, bool) {
	switch v.Kind {
	case KindInt:
		return v.I, true
	case KindFloat:
		if v.F == math.Trunc(v.F) && math.Abs(v.F) < 1e15 {
			return int64(v.F), true
		}
	}
	return 0, false
}

// appendRowKey appends the composite key of row r over cols (all columns
// when cols is nil) to buf, length-prefixing each column like RowKey.
func appendRowKey(buf []byte, r Row, cols []int) []byte {
	if cols == nil {
		for _, v := range r {
			buf = appendCell(buf, v)
		}
		return buf
	}
	for _, c := range cols {
		buf = appendCell(buf, r[c])
	}
	return buf
}

func appendCell(buf []byte, v Value) []byte {
	mark := len(buf)
	buf = append(buf, 0, 0, 0, 0) // key length, fixed 4-byte prefix
	buf = v.appendKey(buf)
	n := len(buf) - mark - 4
	buf[mark] = byte(n >> 24)
	buf[mark+1] = byte(n >> 16)
	buf[mark+2] = byte(n >> 8)
	buf[mark+3] = byte(n)
	return buf
}

// rowKeyEq reports RowKey equality of two rows over all columns.
func rowKeyEq(a, b Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].keyEq(b[i]) {
			return false
		}
	}
	return true
}

// hashBytes is 64-bit FNV-1a, inlined so the dedup path needs no
// hash.Hash allocation.
func hashBytes(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// hashString is hashBytes over a string without copying it.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
