package mixer

import (
	"fmt"
	"strings"

	"npdbench/internal/core"
	"npdbench/internal/npd"
	"npdbench/internal/owl"
	"npdbench/internal/rdf"
	"npdbench/internal/refbench"
	"npdbench/internal/rewrite"
	"npdbench/internal/sparql"
	"npdbench/internal/sqldb"
	"npdbench/internal/vig"
)

// ---------------------------------------------------------------- Table 3

// Table3 renders the paper's Table 3: statistics of the five prior
// benchmark ontologies and their query sets.
func Table3() (string, error) {
	tw := newTextTable("name", "#classes", "#obj_prop", "#data_prop", "#i-axioms", "max#joins", "max#opt", "max#tw")
	for _, b := range refbench.All() {
		row, err := refbench.Table3(b)
		if err != nil {
			return "", err
		}
		tw.add(row.Name,
			fmt.Sprint(row.Classes), fmt.Sprint(row.ObjProps), fmt.Sprint(row.DataProps),
			fmt.Sprint(row.InclusionAxioms),
			fmt.Sprint(row.MaxJoins), fmt.Sprint(row.MaxOptionals), fmt.Sprint(row.MaxTreeWitness))
	}
	return "Table 3: prior benchmark ontologies (statistics)\n" + tw.String(), nil
}

// ---------------------------------------------------------------- Table 7

// Table7Row carries one query's structural statistics.
type Table7Row struct {
	QueryID       string
	Joins         int
	TreeWitnesses int
	MaxSubclasses int
	Optionals     int
	Aggregate     bool
	Filter        bool
	Modifiers     bool
}

// Table7Rows computes the per-query statistics of the 21 NPD queries.
func Table7Rows() ([]Table7Row, error) {
	onto := npd.NewOntology()
	rw := &rewrite.Rewriter{Onto: onto, Existential: true}
	var rows []Table7Row
	for _, q := range npd.Queries() {
		parsed, err := sparql.Parse(q.SPARQL, npd.Prefixes())
		if err != nil {
			return nil, fmt.Errorf("mixer: %s: %w", q.ID, err)
		}
		st := parsed.ComputeStats()
		row := Table7Row{
			QueryID:       q.ID,
			Joins:         st.Joins,
			Optionals:     st.Optionals,
			Aggregate:     st.HasAggregate,
			Filter:        st.HasFilter,
			Modifiers:     parsed.Distinct || len(parsed.OrderBy) > 0 || parsed.Limit >= 0,
			MaxSubclasses: maxSubclasses(onto, parsed),
			TreeWitnesses: queryTreeWitnesses(rw, onto, parsed),
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table7 renders the statistics table.
func Table7() (string, error) {
	rows, err := Table7Rows()
	if err != nil {
		return "", err
	}
	tw := newTextTable("query", "#join", "#tw", "max(#subcls)", "#opts", "Agg", "Filt.", "Mod.")
	yn := func(b bool) string {
		if b {
			return "Y"
		}
		return "N"
	}
	for _, r := range rows {
		tw.add(r.QueryID, fmt.Sprint(r.Joins), fmt.Sprint(r.TreeWitnesses),
			fmt.Sprint(r.MaxSubclasses), fmt.Sprint(r.Optionals),
			yn(r.Aggregate), yn(r.Filter), yn(r.Modifiers))
	}
	return "Table 7: statistics for the 21 benchmark queries\n" + tw.String(), nil
}

// maxSubclasses returns the largest subclass-expansion factor over the
// query's class atoms (the paper's max(#subcls) column).
func maxSubclasses(onto *owl.Ontology, q *sparql.Query) int {
	max := 0
	var walk func(p sparql.GraphPattern)
	walk = func(p sparql.GraphPattern) {
		switch x := p.(type) {
		case *sparql.BGP:
			for _, tp := range x.Triples {
				if tp.P.IsVar() || tp.P.Term.Value != rdf.RDFType || tp.O.IsVar() {
					continue
				}
				n := len(onto.SubConceptsOf(owl.NamedConcept(tp.O.Term.Value)))
				if n > max {
					max = n
				}
			}
		case *sparql.Group:
			for _, part := range x.Parts {
				walk(part)
			}
		case *sparql.Filter:
			walk(x.Inner)
		case *sparql.Optional:
			walk(x.Left)
			walk(x.Right)
		case *sparql.Union:
			walk(x.Left)
			walk(x.Right)
		}
	}
	walk(q.Pattern)
	return max
}

// queryTreeWitnesses sums tree witnesses over the query's BGP leaves.
func queryTreeWitnesses(rw *rewrite.Rewriter, onto *owl.Ontology, q *sparql.Query) int {
	total := 0
	var walk func(p sparql.GraphPattern)
	walk = func(p sparql.GraphPattern) {
		switch x := p.(type) {
		case *sparql.BGP:
			var answer []string
			for _, v := range sparql.PatternVars(x) {
				if !strings.HasPrefix(v, "_bn") {
					answer = append(answer, v)
				}
			}
			cq, err := rewrite.FromBGP(x, onto, answer)
			if err != nil {
				return
			}
			res, err := rw.Rewrite(cq, answer)
			if err != nil {
				return
			}
			total += res.TreeWitnesses
		case *sparql.Group:
			for _, part := range x.Parts {
				walk(part)
			}
		case *sparql.Filter:
			walk(x.Inner)
		case *sparql.Optional:
			walk(x.Left)
			walk(x.Right)
		case *sparql.Union:
			walk(x.Left)
			walk(x.Right)
		}
	}
	walk(q.Pattern)
	return total
}

// ---------------------------------------------------------------- Table 8

// Table8 runs the VIG-vs-random growth validation of Sect. 5.2.
func Table8(seedScale float64, seed int64, growths []float64) (string, error) {
	onto := npd.NewOntology()
	mapping := npd.NewMapping()
	validator := &vig.GrowthValidator{
		Onto:    onto,
		Mapping: mapping,
		NewSeed: func() (*sqldb.Database, error) {
			return npd.NewSeededDatabase(npd.SeedConfig{Scale: seedScale, Seed: seed})
		},
	}
	heuristic, err := validator.Run("heuristic", vig.VIGFunc(seed), growths)
	if err != nil {
		return "", err
	}
	random, err := validator.Run("random", vig.RandomFunc(seed), growths)
	if err != nil {
		return "", err
	}
	byKey := func(rows []vig.GrowthRow) map[string]vig.GrowthRow {
		m := make(map[string]vig.GrowthRow)
		for _, r := range rows {
			m[fmt.Sprintf("%s_npd%g", r.Kind, 1+r.Growth)] = r
		}
		return m
	}
	h, r := byKey(heuristic), byKey(random)
	tw := newTextTable("type_db", "avgdev heur", "avgdev rand", "err>50% heur", "err>50% rand", "err>50%rel heur", "err>50%rel rand")
	for _, g := range growths {
		for _, kind := range []vig.ElementKind{vig.KindClass, vig.KindObj, vig.KindData} {
			key := fmt.Sprintf("%s_npd%g", kind, 1+g)
			hr, rr := h[key], r[key]
			tw.add(key,
				fmt.Sprintf("%.2f%%", hr.AvgDeviation*100),
				fmt.Sprintf("%.2f%%", rr.AvgDeviation*100),
				fmt.Sprint(hr.Err50), fmt.Sprint(rr.Err50),
				fmt.Sprintf("%.2f%%", hr.Err50Ratio()*100),
				fmt.Sprintf("%.2f%%", rr.Err50Ratio()*100))
		}
	}
	return "Table 8: VIG (heuristic) vs random generator — virtual growth quality\n" + tw.String(), nil
}

// ----------------------------------------------------- Tables 9/10, Fig. 1

// TractableTable renders the Table 9/10 shape for one profile: per scale,
// avg execution time, avg result-translation time, avg result size, QMpH
// and the virtual triple count.
func TractableTable(rep *Report, caption string) string {
	tw := newTextTable("db", "avg(ex_time)", "avg(out_time)", "avg(res_size)", "qmph", "#(triples)")
	for _, sm := range rep.Scales {
		var exec, out int64
		var rows float64
		for _, q := range sm.Queries {
			exec += q.AvgExec.Microseconds()
			out += q.AvgTranslate.Microseconds()
			rows += q.AvgRows
		}
		n := int64(len(sm.Queries))
		if n == 0 {
			n = 1
		}
		tw.add(fmt.Sprintf("NPD%g", sm.Scale),
			fmt.Sprintf("%.2fms", float64(exec/n)/1000),
			fmt.Sprintf("%.2fms", float64(out/n)/1000),
			fmt.Sprintf("%.1f", rows/float64(n)),
			fmt.Sprintf("%.1f", sm.QMPH),
			fmt.Sprint(sm.Triples))
	}
	return caption + "\n" + tw.String()
}

// Figure1 runs the QMpH sweep for both profiles and renders the series
// (the paper's Figure 1, log-scale QMpH of the two backends).
func Figure1(cfg Config) (string, error) {
	cfgHash := cfg
	cfgHash.Profile = sqldb.ProfileHashJoin
	repHash, err := Run(cfgHash)
	if err != nil {
		return "", err
	}
	cfgMerge := cfg
	cfgMerge.Profile = sqldb.ProfileSortMerge
	repMerge, err := Run(cfgMerge)
	if err != nil {
		return "", err
	}
	tw := newTextTable("db", "QMpH(hashjoin)", "QMpH(sortmerge)")
	for i := range repHash.Scales {
		tw.add(fmt.Sprintf("NPD%g", repHash.Scales[i].Scale),
			fmt.Sprintf("%.1f", repHash.Scales[i].QMPH),
			fmt.Sprintf("%.1f", repMerge.Scales[i].QMPH))
	}
	return "Figure 1: QMpH across scale factors for the two database profiles\n" + tw.String(), nil
}

// QueryBreakdown renders the per-query measures for one scale (the Table 1
// measures of the paper), with the total-latency distribution (stddev and
// p50/p95/p99 over the recorded per-run samples) next to the means.
func QueryBreakdown(sm ScaleMeasure) string {
	tw := newTextTable("query", "rewrite", "unfold", "exec", "translate", "total", "stddev", "p50", "p95", "p99", "rows", "tw", "#cq", "arms", "W(R+U)")
	for _, q := range sm.Queries {
		tw.add(q.QueryID,
			fmtDur(q.AvgRewrite), fmtDur(q.AvgUnfold), fmtDur(q.AvgExec),
			fmtDur(q.AvgTranslate), fmtDur(q.AvgTotal),
			fmtDur(q.StddevTotal), fmtDur(q.P50Total), fmtDur(q.P95Total), fmtDur(q.P99Total),
			fmt.Sprintf("%.0f", q.AvgRows),
			fmt.Sprint(q.TreeWitnesses), fmt.Sprint(q.CQs), fmt.Sprint(q.UnionArms),
			fmt.Sprintf("%.2f", q.WeightRU))
	}
	return fmt.Sprintf("NPD%g query breakdown (%d rows in DB)\n%s", sm.Scale, sm.DBRows, tw.String())
}

// StoreComparison runs the same workload on the triple-store baseline and
// reports load + per-query times (the paper's Ontop-vs-Stardog comparison).
func StoreComparison(cfg Config) (string, error) {
	queries := selectQueries(cfg)
	onto := npd.NewOntology()
	mapping := npd.NewMapping()
	tw := newTextTable("db", "mat_time", "#triples", "query", "obda_total", "store_total", "rows")
	for _, k := range cfg.Scales {
		db, _, err := BuildInstance(k, cfg.SeedScale, cfg.Seed)
		if err != nil {
			return "", err
		}
		db.Profile = cfg.Profile
		spec := core.Spec{Onto: onto, Mapping: mapping, DB: db, Prefixes: npd.Prefixes()}
		eng, err := core.NewEngine(spec, core.Options{TMappings: true, Existential: cfg.Existential})
		if err != nil {
			return "", err
		}
		store, err := core.NewStoreEngine(spec, core.StoreOptions{Reasoning: true})
		if err != nil {
			return "", err
		}
		for _, q := range queries {
			a1, err := eng.Query(q.SPARQL)
			if err != nil {
				return "", fmt.Errorf("obda %s: %w", q.ID, err)
			}
			a2, err := store.Query(q.SPARQL)
			if err != nil {
				return "", fmt.Errorf("store %s: %w", q.ID, err)
			}
			tw.add(fmt.Sprintf("NPD%g", k),
				fmtDur(store.LoadStats().LoadTime),
				fmt.Sprint(store.LoadStats().Triples),
				q.ID, fmtDur(a1.Stats.TotalTime), fmtDur(a2.Stats.TotalTime),
				fmt.Sprint(a1.Len()))
		}
	}
	return "OBDA engine vs materialized triple store\n" + tw.String(), nil
}
