package mixer

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"time"

	"npdbench/internal/core"
	"npdbench/internal/npd"
	"npdbench/internal/obs"
)

// The parallel-speedup benchmark: the full NPD query mix executed on one
// instance at increasing intra-query parallelism levels (1 = sequential
// baseline, then 2, then NumCPU), reporting per-query latency percentiles
// and end-to-end mix speedup versus sequential. Every parallel level's
// results are checked row-for-row against the sequential rendering, so the
// report also certifies that parallel execution is answer-preserving.

// ParBenchQuery is one query's measurement at one parallelism level.
type ParBenchQuery struct {
	QueryID string  `json:"query_id"`
	MeanMS  float64 `json:"mean_ms"`
	P50MS   float64 `json:"p50_ms"`
	P95MS   float64 `json:"p95_ms"`
	Rows    int     `json:"rows"`
	// SpeedupVsSeq is the sequential mean over this level's mean (>1 =
	// faster than sequential); 1 by definition at level 1.
	SpeedupVsSeq float64 `json:"speedup_vs_seq"`
}

// ParBenchLevel aggregates the mix at one parallelism level.
type ParBenchLevel struct {
	Parallelism int             `json:"parallelism"`
	Queries     []ParBenchQuery `json:"queries"`
	// MixTotalMS sums the per-query mean latencies (one full mix).
	MixTotalMS   float64 `json:"mix_total_ms"`
	SpeedupVsSeq float64 `json:"speedup_vs_seq"`
	// IdenticalToSequential reports whether every query's result set
	// rendered identically to the sequential run's (row-for-row).
	IdenticalToSequential bool `json:"identical_to_sequential"`
}

// ParBenchReport is the JSON document the -parbench mode writes
// (BENCH_parallel.json).
type ParBenchReport struct {
	NumCPU     int             `json:"num_cpu"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	SeedScale  float64         `json:"seed_scale"`
	Seed       int64           `json:"seed"`
	Warmup     int             `json:"warmup"`
	Runs       int             `json:"runs"`
	Levels     []ParBenchLevel `json:"levels"`
}

// JSON renders the report with stable indentation.
func (r *ParBenchReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// parBenchLevels is 1 (sequential baseline), 2, and NumCPU, deduplicated
// and ascending.
func parBenchLevels() []int {
	set := map[int]bool{1: true, 2: true, runtime.NumCPU(): true}
	levels := make([]int, 0, len(set))
	for l := range set {
		levels = append(levels, l)
	}
	sort.Ints(levels)
	return levels
}

// RunParallelBench executes the parallel-speedup benchmark. The workload,
// instance sizing, and run counts come from cfg (QueryIDs nil = all 21
// queries; the instance is the seed at cfg.SeedScale — parallel speedup is
// a per-query property, so one scale suffices).
func RunParallelBench(cfg Config) (*ParBenchReport, error) {
	if cfg.Runs <= 0 {
		cfg.Runs = 1
	}
	if cfg.SeedScale <= 0 {
		cfg.SeedScale = 1
	}
	queries := selectQueries(cfg)
	db, _, err := BuildInstance(1, cfg.SeedScale, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("mixer: building parbench instance: %w", err)
	}
	db.Profile = cfg.Profile
	spec := core.Spec{Onto: npd.NewOntology(), Mapping: npd.NewMapping(), DB: db, Prefixes: npd.Prefixes()}
	rep := &ParBenchReport{
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		SeedScale:  cfg.SeedScale,
		Seed:       cfg.Seed,
		Warmup:     cfg.Warmup,
		Runs:       cfg.Runs,
	}
	// seqRender holds the sequential level's rendered result set per
	// query; parallel levels are compared against it row-for-row.
	seqRender := make(map[string]string)
	seqMean := make(map[string]float64)
	var seqMixMS float64
	for _, par := range parBenchLevels() {
		eng, err := core.NewEngine(spec, core.Options{
			TMappings:     true,
			Existential:   cfg.Existential,
			PlanCache:     cfg.PlanCache,
			PlanCacheSize: cfg.PlanCacheSize,
			Parallelism:   par,
		})
		if err != nil {
			return nil, err
		}
		level := ParBenchLevel{Parallelism: par, IdenticalToSequential: true}
		for _, q := range queries {
			parsed, err := eng.ParseQuery(q.SPARQL)
			if err != nil {
				return nil, fmt.Errorf("mixer: parbench %s: %w", q.ID, err)
			}
			var rendered string
			var rows int
			for i := 0; i < cfg.Warmup; i++ {
				if _, err := eng.Answer(parsed); err != nil {
					return nil, fmt.Errorf("mixer: parbench %s warmup: %w", q.ID, err)
				}
			}
			samples := make([]float64, 0, cfg.Runs)
			var totalMS float64
			for i := 0; i < cfg.Runs; i++ {
				start := time.Now()
				ans, err := eng.Answer(parsed)
				elapsed := time.Since(start)
				if err != nil {
					return nil, fmt.Errorf("mixer: parbench %s at parallelism %d: %w", q.ID, par, err)
				}
				ms := float64(elapsed) / float64(time.Millisecond)
				samples = append(samples, ms)
				totalMS += ms
				rendered = ans.String()
				rows = ans.Len()
			}
			qm := ParBenchQuery{
				QueryID: q.ID,
				MeanMS:  totalMS / float64(cfg.Runs),
				P50MS:   obs.Percentile(samples, 50),
				P95MS:   obs.Percentile(samples, 95),
				Rows:    rows,
			}
			if par == 1 {
				seqRender[q.ID] = rendered
				seqMean[q.ID] = qm.MeanMS
				qm.SpeedupVsSeq = 1
			} else {
				if rendered != seqRender[q.ID] {
					level.IdenticalToSequential = false
				}
				if qm.MeanMS > 0 {
					qm.SpeedupVsSeq = seqMean[q.ID] / qm.MeanMS
				}
			}
			level.Queries = append(level.Queries, qm)
			level.MixTotalMS += qm.MeanMS
		}
		if par == 1 {
			seqMixMS = level.MixTotalMS
			level.SpeedupVsSeq = 1
		} else if level.MixTotalMS > 0 {
			level.SpeedupVsSeq = seqMixMS / level.MixTotalMS
		}
		rep.Levels = append(rep.Levels, level)
	}
	return rep, nil
}
