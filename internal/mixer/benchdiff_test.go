package mixer

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// The committed fixture pair seeds one genuine regression (q1: p50 and
// p95 both +110%) among flat, improved, below-floor, few-runs, removed
// and added queries — the same pair ci.sh diffs expecting exit 1.
const (
	fixtureOld = "testdata/benchdiff_old.jsonl"
	fixtureNew = "testdata/benchdiff_new.jsonl"
)

func verdicts(rep *DiffReport) map[string]string {
	out := make(map[string]string, len(rep.Entries))
	for _, e := range rep.Entries {
		out[e.Key] = e.Verdict
	}
	return out
}

func TestBenchDiffSeededRegression(t *testing.T) {
	rep, err := BenchDiffFiles(fixtureOld, fixtureNew, DefaultDiffOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"q1": "regressed",
		"q2": "ok",
		"q3": "improved",
		"q4": "below-floor",
		"q5": "few-runs",
		"q6": "removed",
		"q7": "added",
	}
	got := verdicts(rep)
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s: verdict = %q, want %q", k, got[k], v)
		}
	}
	if len(got) != len(want) {
		t.Errorf("entries = %v", got)
	}
	if rep.Regressions != 1 || rep.Improved != 1 || rep.Skipped != 2 {
		t.Errorf("summary: regressions=%d improved=%d skipped=%d", rep.Regressions, rep.Improved, rep.Skipped)
	}
	out := rep.String()
	if !strings.Contains(out, "1 regressed") {
		t.Errorf("report text missing summary:\n%s", out)
	}
}

func TestBenchDiffSelfIsClean(t *testing.T) {
	for _, f := range []string{fixtureOld, fixtureNew} {
		rep, err := BenchDiffFiles(f, f, DefaultDiffOptions())
		if err != nil {
			t.Fatal(err)
		}
		if rep.Regressions != 0 || rep.Improved != 0 {
			t.Fatalf("self-diff of %s not clean: %+v", f, verdicts(rep))
		}
	}
}

func TestBenchDiffThresholdGuards(t *testing.T) {
	// A +110% regression disappears under a 200% threshold…
	rep, err := BenchDiffFiles(fixtureOld, fixtureNew, DiffOptions{Threshold: 2.0, MinRuns: 3, Floor: 500 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Regressions != 0 {
		t.Fatalf("regressions under 200%% threshold: %+v", verdicts(rep))
	}
	// …and q5 is judged once MinRuns admits two-run series (it tripled).
	rep, err = BenchDiffFiles(fixtureOld, fixtureNew, DiffOptions{Threshold: 0.30, MinRuns: 2, Floor: 500 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if verdicts(rep)["q5"] != "regressed" {
		t.Fatalf("q5 = %q with MinRuns=2", verdicts(rep)["q5"])
	}
	// Raising the floor past q1's +11ms absolute move suppresses it too.
	rep, err = BenchDiffFiles(fixtureOld, fixtureNew, DiffOptions{Threshold: 0.30, MinRuns: 3, Floor: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if verdicts(rep)["q1"] != "below-floor" {
		t.Fatalf("q1 = %q with 20ms floor", verdicts(rep)["q1"])
	}
}

func TestBenchDiffParbenchFormat(t *testing.T) {
	mk := func(p50, p95 float64) []byte {
		rep := ParBenchReport{
			NumCPU: 4, GOMAXPROCS: 4, SeedScale: 1, Seed: 42, Warmup: 1, Runs: 5,
			Levels: []ParBenchLevel{
				{Parallelism: 1, Queries: []ParBenchQuery{{QueryID: "q6", MeanMS: p50, P50MS: p50, P95MS: p95, Rows: 9}}},
				{Parallelism: 4, Queries: []ParBenchQuery{{QueryID: "q6", MeanMS: p50 / 2, P50MS: p50 / 2, P95MS: p95 / 2, Rows: 9}}},
			},
		}
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	if err := os.WriteFile(oldPath, mk(10, 12), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newPath, mk(20, 25), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := BenchDiffFiles(oldPath, newPath, DefaultDiffOptions())
	if err != nil {
		t.Fatal(err)
	}
	got := verdicts(rep)
	if got["q6@p1"] != "regressed" || got["q6@p4"] != "regressed" {
		t.Fatalf("parbench keys: %v", got)
	}
	// ms-to-µs conversion: old p50 of 10ms must read as 10000µs.
	for _, e := range rep.Entries {
		if e.Key == "q6@p1" && e.OldP50US != 10000 {
			t.Fatalf("q6@p1 old p50 = %vµs, want 10000", e.OldP50US)
		}
	}
	// Self-diff of a parbench report is clean.
	self, err := BenchDiffFiles(oldPath, oldPath, DefaultDiffOptions())
	if err != nil {
		t.Fatal(err)
	}
	if self.Regressions != 0 {
		t.Fatalf("parbench self-diff regressed: %+v", verdicts(self))
	}
}

// The committed batchbench fixture pair seeds one regression at the 1024
// batch size (p50 +140%, p95 +150%) while the row-path level stays flat —
// the pair ci.sh self-diffs expecting a clean report.
const (
	batchFixtureOld = "testdata/batchbench_old.json"
	batchFixtureNew = "testdata/batchbench_new.json"
)

func TestBenchDiffBatchbenchFormat(t *testing.T) {
	rep, err := BenchDiffFiles(batchFixtureOld, batchFixtureNew, DefaultDiffOptions())
	if err != nil {
		t.Fatal(err)
	}
	got := verdicts(rep)
	if got["q6@b1"] != "ok" || got["q6@b1024"] != "regressed" {
		t.Fatalf("batchbench keys: %v", got)
	}
	// ms-to-µs conversion: old p50 of 10ms must read as 10000µs.
	for _, e := range rep.Entries {
		if e.Key == "q6@b1" && e.OldP50US != 10000 {
			t.Fatalf("q6@b1 old p50 = %vµs, want 10000", e.OldP50US)
		}
	}
	// Self-diff of a batchbench report is clean.
	for _, f := range []string{batchFixtureOld, batchFixtureNew} {
		self, err := BenchDiffFiles(f, f, DefaultDiffOptions())
		if err != nil {
			t.Fatal(err)
		}
		if self.Regressions != 0 || self.Improved != 0 {
			t.Fatalf("batchbench self-diff of %s not clean: %+v", f, verdicts(self))
		}
	}
	// The batchbench sniff must not swallow parbench reports: a parbench
	// file still yields @p keys even though both formats carry "levels".
	parRep := ParBenchReport{
		NumCPU: 4, GOMAXPROCS: 4, SeedScale: 1, Seed: 42, Warmup: 1, Runs: 5,
		Levels: []ParBenchLevel{
			{Parallelism: 1, Queries: []ParBenchQuery{{QueryID: "q6", MeanMS: 10, P50MS: 10, P95MS: 12, Rows: 9}}},
		},
	}
	data, err := json.Marshal(parRep)
	if err != nil {
		t.Fatal(err)
	}
	parPath := filepath.Join(t.TempDir(), "par.json")
	if err := os.WriteFile(parPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err = BenchDiffFiles(parPath, parPath, DefaultDiffOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := verdicts(rep)["q6@p1"]; !ok {
		t.Fatalf("parbench file mis-sniffed: %v", verdicts(rep))
	}
}

func TestBenchDiffZeroBaseline(t *testing.T) {
	// A baseline whose percentiles collapsed to zero (sub-microsecond
	// runs) must never be judged by percent delta: no Inf/NaN, no
	// spurious "ok" masking a real slowdown — the query is skipped as
	// below-floor.
	mk := func(p50, p95 float64) []byte {
		rep := ParBenchReport{
			NumCPU: 4, GOMAXPROCS: 4, SeedScale: 1, Seed: 42, Warmup: 1, Runs: 5,
			Levels: []ParBenchLevel{
				{Parallelism: 1, Queries: []ParBenchQuery{{QueryID: "q6", MeanMS: p50, P50MS: p50, P95MS: p95, Rows: 9}}},
			},
		}
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	if err := os.WriteFile(oldPath, mk(0, 0), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newPath, mk(50, 60), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := BenchDiffFiles(oldPath, newPath, DefaultDiffOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := verdicts(rep)["q6@p1"]; got != "below-floor" {
		t.Fatalf("zero-baseline verdict = %q, want below-floor", got)
	}
	if rep.Regressions != 0 || rep.Skipped != 1 {
		t.Fatalf("summary: regressions=%d skipped=%d", rep.Regressions, rep.Skipped)
	}
	for _, e := range rep.Entries {
		for _, d := range []float64{e.DeltaP50, e.DeltaP95} {
			if math.IsInf(d, 0) || math.IsNaN(d) {
				t.Fatalf("%s: non-finite delta %v", e.Key, d)
			}
		}
	}
	if out := rep.String(); strings.Contains(out, "Inf") || strings.Contains(out, "NaN") {
		t.Fatalf("report text carries non-finite values:\n%s", out)
	}
}

func TestBenchDiffRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"empty":         "",
		"blank lines":   "\n\n",
		"not json":      "hello world\n",
		"object no lvl": `{"runs": 3}`,
		"all errors":    `{"trace_id":"t","query":"q1","total_us":5,"error":"x"}` + "\n",
		"no query":      `{"trace_id":"t","total_us":5}` + "\n",
	}
	for name, content := range cases {
		p := filepath.Join(dir, strings.ReplaceAll(name, " ", "_"))
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := BenchDiffFiles(p, fixtureNew, DefaultDiffOptions()); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	if _, err := BenchDiffFiles(filepath.Join(dir, "missing"), fixtureNew, DefaultDiffOptions()); err == nil {
		t.Error("missing file: expected error")
	}
}
