package mixer

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"npdbench/internal/obs"
	"npdbench/internal/sqldb"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.SeedScale = 0.15
	cfg.Scales = []float64{1, 2}
	cfg.Runs = 1
	cfg.Warmup = 0
	cfg.QueryIDs = []string{"q2", "q3", "q4", "q16"}
	cfg.CountTriples = false
	return cfg
}

func TestBuildInstanceScales(t *testing.T) {
	db1, _, err := BuildInstance(1, 0.15, 7)
	if err != nil {
		t.Fatal(err)
	}
	db3, _, err := BuildInstance(3, 0.15, 7)
	if err != nil {
		t.Fatal(err)
	}
	r1, r3 := db1.TotalRows(), db3.TotalRows()
	if r3 < 2*r1 {
		t.Fatalf("NPD3 (%d rows) should be ≈3x NPD1 (%d rows)", r3, r1)
	}
	if errs := db3.CheckIntegrity(); len(errs) != 0 {
		t.Fatalf("integrity: %v", errs[0])
	}
}

func TestRunProducesMeasures(t *testing.T) {
	rep, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Scales) != 2 {
		t.Fatalf("scales = %d", len(rep.Scales))
	}
	for _, sm := range rep.Scales {
		if len(sm.Queries) != 4 {
			t.Fatalf("NPD%g queries = %d", sm.Scale, len(sm.Queries))
		}
		if sm.QMPH <= 0 {
			t.Fatalf("NPD%g QMpH = %g", sm.Scale, sm.QMPH)
		}
		for _, q := range sm.Queries {
			if q.AvgTotal <= 0 {
				t.Fatalf("%s has zero total time", q.QueryID)
			}
		}
	}
	// QMpH must not increase with scale (the Figure 1 trend).
	if rep.Scales[1].QMPH > rep.Scales[0].QMPH*1.2 {
		t.Fatalf("QMpH grew with data size: %g -> %g",
			rep.Scales[0].QMPH, rep.Scales[1].QMPH)
	}
	out := rep.Summary()
	if !strings.Contains(out, "NPD1") || !strings.Contains(out, "q16") {
		t.Fatalf("summary incomplete:\n%s", out)
	}
}

func TestTractableTableRendering(t *testing.T) {
	rep, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	out := TractableTable(rep, "caption")
	for _, col := range []string{"avg(ex_time)", "avg(out_time)", "qmph", "NPD1", "NPD2"} {
		if !strings.Contains(out, col) {
			t.Fatalf("missing %q in:\n%s", col, out)
		}
	}
}

func TestTable7ShapeMatchesPaper(t *testing.T) {
	rows, err := Table7Rows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 21 {
		t.Fatalf("rows = %d, want 21", len(rows))
	}
	var q6 *Table7Row
	aggs := 0
	filters := 0
	for i := range rows {
		if rows[i].QueryID == "q6" {
			q6 = &rows[i]
		}
		if rows[i].Aggregate {
			aggs++
		}
		if rows[i].Filter {
			filters++
		}
	}
	if q6 == nil || q6.TreeWitnesses != 2 {
		t.Fatalf("q6 must have 2 tree witnesses: %+v", q6)
	}
	if aggs != 7 {
		t.Fatalf("aggregate queries = %d, want 7 (q15–q21)", aggs)
	}
	if filters < 5 {
		t.Fatalf("filtered queries = %d", filters)
	}
}

func TestProfilesBothComplete(t *testing.T) {
	cfg := smallConfig()
	cfg.Scales = []float64{1}
	for _, p := range []sqldb.Profile{sqldb.ProfileHashJoin, sqldb.ProfileSortMerge} {
		cfg.Profile = p
		rep, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if rep.Scales[0].QMPH <= 0 {
			t.Fatalf("%s: no throughput", p)
		}
	}
}

func TestMultiClientRun(t *testing.T) {
	cfg := smallConfig()
	cfg.Scales = []float64{1}
	cfg.Clients = 4
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range rep.Scales[0].Queries {
		if q.Runs != 4 {
			t.Fatalf("%s runs = %d, want clients×runs = 4", q.QueryID, q.Runs)
		}
	}
}

func TestTextTable(t *testing.T) {
	tw := newTextTable("a", "bbbb")
	tw.add("1")
	tw.add("22", "3")
	out := tw.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "a ") {
		t.Fatalf("header: %q", lines[0])
	}
}

func TestTable8Renders(t *testing.T) {
	out, err := Table8(0.1, 3, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"class_npd2", "obj_npd2", "data_npd2", "avgdev heur"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestTable3AndTable7Render(t *testing.T) {
	t3, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(t3, "adolena") || !strings.Contains(t3, "fishmark") {
		t.Fatalf("table 3 incomplete:\n%s", t3)
	}
	t7, err := Table7()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(t7, "q21") {
		t.Fatalf("table 7 incomplete:\n%s", t7)
	}
}

func TestRunLogAndPercentiles(t *testing.T) {
	var buf bytes.Buffer
	cfg := smallConfig()
	cfg.Scales = []float64{1}
	cfg.Runs = 4
	cfg.QueryIDs = []string{"q2", "q3"}
	cfg.RunLog = obs.NewRunLog(&buf)
	cfg.Metrics = obs.NewRegistry()
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.RunLog.Flush(); err != nil {
		t.Fatal(err)
	}
	n, err := obs.ValidateRunLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("run log invalid: %v\n%s", err, buf.String())
	}
	if n != 2*4 {
		t.Fatalf("run log has %d records, want 8", n)
	}
	// Records carry real trace ids and distinct ones per run.
	ids := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec obs.RunRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatal(err)
		}
		if rec.TraceID == "untraced" {
			t.Fatalf("record missing trace id: %s", line)
		}
		ids[rec.TraceID] = true
		if rec.Scale != 1 || rec.Profile == "" {
			t.Fatalf("record missing scale/profile: %s", line)
		}
	}
	if len(ids) != n {
		t.Fatalf("trace ids not unique: %d ids over %d records", len(ids), n)
	}
	// Percentile columns are populated and ordered.
	qm := rep.Scales[0].Queries[0]
	if qm.P50Total <= 0 || qm.P95Total < qm.P50Total || qm.P99Total < qm.P95Total {
		t.Fatalf("percentiles inconsistent: p50=%v p95=%v p99=%v", qm.P50Total, qm.P95Total, qm.P99Total)
	}
	if qm.P99Total > 4*qm.AvgTotal+qm.StddevTotal*8 {
		t.Logf("note: long tail p99=%v avg=%v", qm.P99Total, qm.AvgTotal)
	}
	// The metrics registry saw every measured (and warmup) execution.
	if cfg.Metrics.Counter("npdbench_queries_total").Value() < 8 {
		t.Fatalf("metrics registry missed runs: %d", cfg.Metrics.Counter("npdbench_queries_total").Value())
	}
	// Breakdown renders the new distribution columns.
	out := QueryBreakdown(rep.Scales[0])
	for _, col := range []string{"stddev", "p50", "p95", "p99"} {
		if !strings.Contains(out, col) {
			t.Fatalf("breakdown missing %q column:\n%s", col, out)
		}
	}
}
