package mixer

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"npdbench/internal/npd"
	"npdbench/internal/obs"
)

// The serving-mode benchmark: an open-loop, arrival-rate-driven load
// generator speaking the SPARQL protocol against a live endpoint
// (obdaqd). Unlike the in-process QMpH sweep of Figure 1 — a closed
// loop, where each client waits for its answer before issuing the next
// query — the open loop fires requests on a Poisson arrival schedule
// regardless of completions, so queueing delay, throttling, and
// latency-under-load become visible instead of being absorbed into the
// issue rate. Each tenant is an independent arrival process cycling
// through its own copy of the query mix.

// ServeLoadConfig drives one serving benchmark.
type ServeLoadConfig struct {
	// Endpoint is the server's base URL (e.g. http://127.0.0.1:8585);
	// the harness appends /sparql and /healthz.
	Endpoint string
	// Rates are the offered arrival rates in queries/second; the mix is
	// measured once per rate.
	Rates []float64
	// Duration is how long each rate is sustained (default 5s).
	Duration time.Duration
	// QueryIDs selects a subset of the mix (nil = all 21 queries).
	QueryIDs []string
	// Tenants is the number of independent arrival processes splitting
	// the offered rate (default 1).
	Tenants int
	// Seed fixes the arrival schedules and per-tenant mix order.
	Seed int64
	// Timeout bounds one HTTP request (default 30s).
	Timeout time.Duration
	// ReadyWait bounds the initial /healthz polling (default 30s).
	ReadyWait time.Duration
}

// ServeLoadRate is the measurement at one offered arrival rate.
type ServeLoadRate struct {
	RatePerSec float64 `json:"rate_per_sec"`
	// Offered counts arrivals fired; Completed counts 200s with a
	// well-formed result document.
	Offered   int `json:"offered"`
	Completed int `json:"completed"`
	// Throttled counts 429s — load the server shed at admission.
	Throttled int `json:"throttled"`
	// Timeouts counts 503s — queries the server cut off at its deadline
	// (the mix's non-tractable queries under a tight budget land here).
	Timeouts int `json:"timeouts"`
	// ProtocolErrors counts everything else: transport failures,
	// unexpected statuses, malformed result documents.
	ProtocolErrors int `json:"protocol_errors"`
	// QMPH is completed query mixes per hour (completed queries divided
	// by mix size, scaled to an hour).
	QMPH   float64 `json:"qmph"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
}

// ServeLoadReport is the JSON document the -servebench mode writes
// (BENCH_serve.json).
type ServeLoadReport struct {
	Endpoint    string          `json:"endpoint"`
	Tenants     int             `json:"tenants"`
	MixSize     int             `json:"mix_size"`
	DurationSec float64         `json:"duration_sec"`
	Seed        int64           `json:"seed"`
	Rates       []ServeLoadRate `json:"rates"`
}

// JSON renders the report with stable indentation.
func (r *ServeLoadReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// WaitReady polls the endpoint's /healthz until it answers 200 or the
// wait budget runs out.
func WaitReady(endpoint string, wait time.Duration) error {
	client := &http.Client{Timeout: time.Second}
	deadline := time.Now().Add(wait)
	for {
		resp, err := client.Get(endpoint + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("mixer: endpoint %s not ready after %v: %w", endpoint, wait, err)
			}
			return fmt.Errorf("mixer: endpoint %s not ready after %v", endpoint, wait)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// RunServeLoad measures the endpoint at each configured arrival rate.
func RunServeLoad(cfg ServeLoadConfig) (*ServeLoadReport, error) {
	if cfg.Endpoint == "" {
		return nil, fmt.Errorf("mixer: servebench needs an endpoint URL")
	}
	if len(cfg.Rates) == 0 {
		return nil, fmt.Errorf("mixer: servebench needs at least one arrival rate")
	}
	for _, r := range cfg.Rates {
		if r <= 0 {
			return nil, fmt.Errorf("mixer: bad arrival rate %g (need > 0)", r)
		}
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}
	if cfg.Tenants <= 0 {
		cfg.Tenants = 1
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.ReadyWait <= 0 {
		cfg.ReadyWait = 30 * time.Second
	}
	queries := selectServeQueries(cfg.QueryIDs)
	if len(queries) == 0 {
		return nil, fmt.Errorf("mixer: no queries selected")
	}
	if err := WaitReady(cfg.Endpoint, cfg.ReadyWait); err != nil {
		return nil, err
	}
	rep := &ServeLoadReport{
		Endpoint:    cfg.Endpoint,
		Tenants:     cfg.Tenants,
		MixSize:     len(queries),
		DurationSec: cfg.Duration.Seconds(),
		Seed:        cfg.Seed,
	}
	client := &http.Client{Timeout: cfg.Timeout}
	for _, rate := range cfg.Rates {
		rep.Rates = append(rep.Rates, runServeRate(cfg, client, queries, rate))
	}
	return rep, nil
}

// serveTally accumulates one rate's outcomes across all tenants.
type serveTally struct {
	mu             sync.Mutex
	offered        int
	completed      int
	throttled      int
	timeouts       int
	protocolErrors int
	latenciesMS    []float64
}

func runServeRate(cfg ServeLoadConfig, client *http.Client, queries []npd.BenchQuery, rate float64) ServeLoadRate {
	tally := &serveTally{}
	perTenant := rate / float64(cfg.Tenants)
	var tenants sync.WaitGroup
	for t := 0; t < cfg.Tenants; t++ {
		tenants.Add(1)
		go func(tenant int) {
			defer tenants.Done()
			runTenant(cfg, client, queries, perTenant, rate, tenant, tally)
		}(t)
	}
	tenants.Wait()

	out := ServeLoadRate{
		RatePerSec:     rate,
		Offered:        tally.offered,
		Completed:      tally.completed,
		Throttled:      tally.throttled,
		Timeouts:       tally.timeouts,
		ProtocolErrors: tally.protocolErrors,
	}
	out.QMPH = float64(tally.completed) / float64(len(queries)) * 3600 / cfg.Duration.Seconds()
	if n := len(tally.latenciesMS); n > 0 {
		var sum float64
		for _, v := range tally.latenciesMS {
			sum += v
		}
		out.MeanMS = sum / float64(n)
		out.P50MS = obs.Percentile(tally.latenciesMS, 50)
		out.P95MS = obs.Percentile(tally.latenciesMS, 95)
		out.P99MS = obs.Percentile(tally.latenciesMS, 99)
	}
	return out
}

// runTenant is one open-loop arrival process: exponential inter-arrival
// gaps at the tenant's share of the offered rate, each arrival fired on
// its own goroutine so a slow answer never delays the next arrival.
func runTenant(cfg ServeLoadConfig, client *http.Client, queries []npd.BenchQuery, perTenant, rate float64, tenant int, tally *serveTally) {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(tenant)*7919 + int64(rate*1000)))
	// Each tenant walks the mix from its own offset, so tenants do not
	// hammer the same query in lockstep.
	next := tenant * len(queries) / cfg.Tenants
	deadline := time.Now().Add(cfg.Duration)
	var inflight sync.WaitGroup
	for {
		gap := time.Duration(rng.ExpFloat64() / perTenant * float64(time.Second))
		time.Sleep(gap)
		if !time.Now().Before(deadline) {
			break
		}
		q := queries[next%len(queries)]
		next++
		inflight.Add(1)
		go func(q npd.BenchQuery) {
			defer inflight.Done()
			fireQuery(cfg, client, q, tally)
		}(q)
	}
	inflight.Wait()
}

// fireQuery issues one protocol request and classifies the outcome.
func fireQuery(cfg ServeLoadConfig, client *http.Client, q npd.BenchQuery, tally *serveTally) {
	tally.mu.Lock()
	tally.offered++
	tally.mu.Unlock()

	start := time.Now()
	resp, err := client.PostForm(cfg.Endpoint+"/sparql",
		url.Values{"query": {q.SPARQL}, "label": {q.ID}})
	if err != nil {
		tally.record(func(t *serveTally) { t.protocolErrors++ })
		return
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		// Drain and validate: a completed query is a well-formed SPARQL
		// results document, not merely a 200 status line.
		var doc struct {
			Head struct {
				Vars []string `json:"vars"`
			} `json:"head"`
			Results *struct {
				Bindings []json.RawMessage `json:"bindings"`
			} `json:"results"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil || doc.Results == nil {
			tally.record(func(t *serveTally) { t.protocolErrors++ })
			return
		}
		ms := float64(time.Since(start)) / float64(time.Millisecond)
		tally.record(func(t *serveTally) {
			t.completed++
			t.latenciesMS = append(t.latenciesMS, ms)
		})
	case http.StatusTooManyRequests:
		io.Copy(io.Discard, resp.Body)
		tally.record(func(t *serveTally) { t.throttled++ })
	case http.StatusServiceUnavailable:
		io.Copy(io.Discard, resp.Body)
		tally.record(func(t *serveTally) { t.timeouts++ })
	default:
		io.Copy(io.Discard, resp.Body)
		tally.record(func(t *serveTally) { t.protocolErrors++ })
	}
}

func (t *serveTally) record(fn func(*serveTally)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	fn(t)
}

// selectServeQueries resolves the query-ID subset against the mix.
func selectServeQueries(ids []string) []npd.BenchQuery {
	all := npd.Queries()
	if len(ids) == 0 {
		return all
	}
	var out []npd.BenchQuery
	for _, id := range ids {
		id = strings.TrimSpace(id)
		for _, q := range all {
			if q.ID == id {
				out = append(out, q)
				break
			}
		}
	}
	return out
}
