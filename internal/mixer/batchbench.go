package mixer

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"npdbench/internal/core"
	"npdbench/internal/npd"
	"npdbench/internal/obs"
)

// The batch-size benchmark: the full NPD query mix executed on one instance
// at increasing vectorized batch sizes (1 = row-at-a-time baseline, then
// 256, 1024, 4096), reporting per-query latency percentiles, allocations
// per execution, and end-to-end mix speedup versus the row path. Every
// batched level's results are checked row-for-row against the row-path
// rendering, so the report also certifies that the vectorized executor is
// answer-preserving.

// BatchBenchQuery is one query's measurement at one batch size.
type BatchBenchQuery struct {
	QueryID string  `json:"query_id"`
	MeanMS  float64 `json:"mean_ms"`
	P50MS   float64 `json:"p50_ms"`
	P95MS   float64 `json:"p95_ms"`
	Rows    int     `json:"rows"`
	// AllocsPerOp is the heap-allocation count per measured execution
	// (mallocs delta over the measured runs, divided by the run count).
	AllocsPerOp uint64 `json:"allocs_per_op"`
	// SpeedupVsRow is the row-path mean over this level's mean (>1 =
	// faster than row-at-a-time); 1 by definition at batch size 1.
	SpeedupVsRow float64 `json:"speedup_vs_row"`
}

// BatchBenchLevel aggregates the mix at one batch size.
type BatchBenchLevel struct {
	BatchSize int               `json:"batch_size"`
	Queries   []BatchBenchQuery `json:"queries"`
	// MixTotalMS sums the per-query mean latencies (one full mix).
	MixTotalMS   float64 `json:"mix_total_ms"`
	SpeedupVsRow float64 `json:"speedup_vs_row"`
	// MixAllocs sums the per-query allocations per execution.
	MixAllocs uint64 `json:"mix_allocs"`
	// IdenticalToRowPath reports whether every query's result set rendered
	// identically to the row-at-a-time run's (row-for-row).
	IdenticalToRowPath bool `json:"identical_to_row_path"`
}

// BatchBenchReport is the JSON document the -batchbench mode writes
// (BENCH_batch.json).
type BatchBenchReport struct {
	NumCPU      int               `json:"num_cpu"`
	GOMAXPROCS  int               `json:"gomaxprocs"`
	Parallelism int               `json:"parallelism"`
	SeedScale   float64           `json:"seed_scale"`
	Seed        int64             `json:"seed"`
	Warmup      int               `json:"warmup"`
	Runs        int               `json:"runs"`
	Levels      []BatchBenchLevel `json:"levels"`
}

// JSON renders the report with stable indentation.
func (r *BatchBenchReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// batchBenchLevels is the fixed ladder: the row-at-a-time baseline, then
// the batch sizes bracketing the executor default.
func batchBenchLevels() []int {
	return []int{1, 256, 1024, 4096}
}

// RunBatchBench executes the batch-size benchmark. The workload, instance
// sizing, and run counts come from cfg (QueryIDs nil = all 21 queries; the
// instance is the seed at cfg.SeedScale — batch-size behaviour is a
// per-query property, so one scale suffices). Parallelism follows
// cfg.Parallelism, defaulting to sequential so the allocation counts
// measure the executor rather than worker scheduling.
func RunBatchBench(cfg Config) (*BatchBenchReport, error) {
	if cfg.Runs <= 0 {
		cfg.Runs = 1
	}
	if cfg.SeedScale <= 0 {
		cfg.SeedScale = 1
	}
	par := cfg.Parallelism
	if par <= 0 {
		par = 1
	}
	queries := selectQueries(cfg)
	db, _, err := BuildInstance(1, cfg.SeedScale, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("mixer: building batchbench instance: %w", err)
	}
	db.Profile = cfg.Profile
	spec := core.Spec{Onto: npd.NewOntology(), Mapping: npd.NewMapping(), DB: db, Prefixes: npd.Prefixes()}
	rep := &BatchBenchReport{
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Parallelism: par,
		SeedScale:   cfg.SeedScale,
		Seed:        cfg.Seed,
		Warmup:      cfg.Warmup,
		Runs:        cfg.Runs,
	}
	// rowRender holds the row-path level's rendered result set per query;
	// batched levels are compared against it row-for-row.
	rowRender := make(map[string]string)
	rowMean := make(map[string]float64)
	var rowMixMS float64
	for _, bs := range batchBenchLevels() {
		// Constraints and static pruning stay on (the engine's production
		// defaults): without them the unfolded unions carry many degenerate
		// single-row arms whose fixed per-operator cost drowns the
		// batch-size signal this benchmark isolates.
		eng, err := core.NewEngine(spec, core.Options{
			TMappings:     true,
			Existential:   cfg.Existential,
			Constraints:   true,
			StaticPrune:   true,
			PlanCache:     cfg.PlanCache,
			PlanCacheSize: cfg.PlanCacheSize,
			Parallelism:   par,
			BatchSize:     bs,
		})
		if err != nil {
			return nil, err
		}
		level := BatchBenchLevel{BatchSize: bs, IdenticalToRowPath: true}
		for _, q := range queries {
			parsed, err := eng.ParseQuery(q.SPARQL)
			if err != nil {
				return nil, fmt.Errorf("mixer: batchbench %s: %w", q.ID, err)
			}
			var rendered string
			var rows int
			for i := 0; i < cfg.Warmup; i++ {
				if _, err := eng.Answer(parsed); err != nil {
					return nil, fmt.Errorf("mixer: batchbench %s warmup: %w", q.ID, err)
				}
			}
			samples := make([]float64, 0, cfg.Runs)
			var totalMS float64
			var ms0, ms1 runtime.MemStats
			runtime.ReadMemStats(&ms0)
			for i := 0; i < cfg.Runs; i++ {
				start := time.Now()
				ans, err := eng.Answer(parsed)
				elapsed := time.Since(start)
				if err != nil {
					return nil, fmt.Errorf("mixer: batchbench %s at batch size %d: %w", q.ID, bs, err)
				}
				ms := float64(elapsed) / float64(time.Millisecond)
				samples = append(samples, ms)
				totalMS += ms
				rendered = ans.String()
				rows = ans.Len()
			}
			runtime.ReadMemStats(&ms1)
			qm := BatchBenchQuery{
				QueryID:     q.ID,
				MeanMS:      totalMS / float64(cfg.Runs),
				P50MS:       obs.Percentile(samples, 50),
				P95MS:       obs.Percentile(samples, 95),
				Rows:        rows,
				AllocsPerOp: (ms1.Mallocs - ms0.Mallocs) / uint64(cfg.Runs),
			}
			if bs == 1 {
				rowRender[q.ID] = rendered
				rowMean[q.ID] = qm.MeanMS
				qm.SpeedupVsRow = 1
			} else {
				if rendered != rowRender[q.ID] {
					level.IdenticalToRowPath = false
				}
				if qm.MeanMS > 0 {
					qm.SpeedupVsRow = rowMean[q.ID] / qm.MeanMS
				}
			}
			level.Queries = append(level.Queries, qm)
			level.MixTotalMS += qm.MeanMS
			level.MixAllocs += qm.AllocsPerOp
		}
		if bs == 1 {
			rowMixMS = level.MixTotalMS
			level.SpeedupVsRow = 1
		} else if level.MixTotalMS > 0 {
			level.SpeedupVsRow = rowMixMS / level.MixTotalMS
		}
		rep.Levels = append(rep.Levels, level)
	}
	return rep, nil
}
