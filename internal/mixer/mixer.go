// Package mixer is the reproduction of the benchmark's automated testing
// platform ("OBDA Mixer"): it builds scaled NPD instances with VIG, runs
// query mixes against the OBDA engine under a chosen database profile,
// collects the per-phase measures of the paper's Table 1, and renders the
// evaluation tables and figures (Tables 3, 7, 8, 9, 10 and Figure 1).
package mixer

import (
	"fmt"
	"math"
	"sync"
	"time"

	"npdbench/internal/core"
	"npdbench/internal/npd"
	"npdbench/internal/obs"
	"npdbench/internal/sqldb"
	"npdbench/internal/vig"
)

// Config drives a mixer run.
type Config struct {
	// Scales lists the instance sizes as the paper's NPDk factors
	// (NPD1 = seed, NPD5 = seed pumped by growth 4, ...).
	Scales []float64
	// SeedScale sizes the seed instance (1.0 = default snapshot).
	SeedScale float64
	// Seed fixes all randomness.
	Seed int64
	// QueryIDs selects the workload (nil = all 21).
	QueryIDs []string
	// Warmup runs per query before measuring.
	Warmup int
	// Runs measured per query.
	Runs int
	// Profile selects the database backend behaviour.
	Profile sqldb.Profile
	// Existential toggles tree-witness reasoning.
	Existential bool
	// SkipAggregates drops q15–q21 (the paper measures them separately
	// with a dedicated engine version).
	SkipAggregates bool
	// CountTriples materializes the virtual graph size per scale (costly
	// on large instances; reported as 0 when off).
	CountTriples bool
	// Clients runs that many concurrent query streams per measurement (the
	// paper presents single-client results "due to space constraints";
	// this knob restores the multi-client dimension). 0 or 1 = one client.
	Clients int
	// PlanCache enables the engine's compiled-query cache so steady-state
	// runs measure execution, not recompilation.
	PlanCache bool
	// PlanCacheSize bounds the cache (0 = engine default).
	PlanCacheSize int
	// Parallelism is the engine's intra-query worker cap (0 = NumCPU,
	// 1 = sequential). Results are identical at every setting.
	Parallelism int
	// BatchSize is the SQL executor's vectorized batch size (0 = default
	// 1024, 1 = row-at-a-time). Results are identical at every setting.
	BatchSize int
	// RunLog, when non-nil, receives one JSONL record per measured query
	// execution (trace id, stage timings, row counts). Enabling it turns on
	// engine tracing so each record carries a real trace id.
	RunLog *obs.RunLog
	// Metrics, when non-nil, receives the engine's process-wide counters
	// and histograms (served by cmd/mixer -http).
	Metrics *obs.Registry
	// Sampler, when non-nil, makes the per-query trace retention decision
	// instead of all-or-nothing tracing (probabilistic head sampling plus
	// promote-on-slow).
	Sampler *obs.Sampler
	// SlowLog, when non-nil, captures the slowest queries with span tree
	// and usage block (served by cmd/mixer -http at /debug/slowlog).
	SlowLog *obs.SlowLog
	// Budget sets per-query soft resource limits; exceeding one marks the
	// run's usage block and bumps npdbench_budget_exceeded_total.
	Budget obs.QueryBudget
}

// DefaultConfig returns a laptop-friendly configuration.
func DefaultConfig() Config {
	return Config{
		Scales:       []float64{1, 2, 5},
		SeedScale:    1,
		Seed:         42,
		Warmup:       1,
		Runs:         3,
		Profile:      sqldb.ProfileHashJoin,
		Existential:  true,
		CountTriples: true,
		PlanCache:    true,
	}
}

// QueryMeasure aggregates one query's runs (Table 1 measures). Besides the
// means it keeps the total-latency distribution: stddev plus the p50/p95/p99
// percentiles interpolated from the recorded per-run samples.
type QueryMeasure struct {
	QueryID string
	// Runs counts the executions that actually completed successfully —
	// when a client errors out, its remaining slots never run and are not
	// aggregated.
	Runs int
	// Errors counts the runs that failed; their partial timings are
	// excluded from every average.
	Errors        int
	AvgRewrite    time.Duration
	AvgUnfold     time.Duration
	AvgExec       time.Duration
	AvgTranslate  time.Duration // the paper's "out_time" (result translation)
	AvgTotal      time.Duration
	StddevTotal   time.Duration
	P50Total      time.Duration
	P95Total      time.Duration
	P99Total      time.Duration
	AvgRows       float64
	TreeWitnesses int
	CQs           int
	UnionArms     int
	WeightRU      float64
}

// ScaleMeasure aggregates a full mix on one instance size.
type ScaleMeasure struct {
	Scale    float64 // NPDk
	DBRows   int
	Triples  int
	LoadTime time.Duration
	GenTime  time.Duration
	Queries  []QueryMeasure
	// QMPH is query mixes per hour: 3600 / (seconds per full mix).
	QMPH float64
}

// Report is the output of a mixer run.
type Report struct {
	Config Config
	Scales []ScaleMeasure
}

// BuildInstance creates the NPDk instance: the synthetic seed pumped by
// VIG with growth factor k−1.
func BuildInstance(k, seedScale float64, seed int64) (*sqldb.Database, time.Duration, error) {
	start := time.Now()
	db, err := npd.NewSeededDatabase(npd.SeedConfig{Scale: seedScale, Seed: seed})
	if err != nil {
		return nil, 0, err
	}
	if k > 1 {
		analysis, err := vig.Analyze(db)
		if err != nil {
			return nil, 0, err
		}
		if _, err := vig.New(analysis, seed).Generate(db, k-1); err != nil {
			return nil, 0, err
		}
	}
	return db, time.Since(start), nil
}

// Run executes the configured mix across all scales.
func Run(cfg Config) (*Report, error) {
	if cfg.Runs <= 0 {
		cfg.Runs = 1
	}
	if cfg.SeedScale <= 0 {
		cfg.SeedScale = 1
	}
	queries := selectQueries(cfg)
	rep := &Report{Config: cfg}
	onto := npd.NewOntology()
	mapping := npd.NewMapping()
	for _, k := range cfg.Scales {
		db, genTime, err := BuildInstance(k, cfg.SeedScale, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("mixer: building NPD%g: %w", k, err)
		}
		db.Profile = cfg.Profile
		spec := core.Spec{Onto: onto, Mapping: mapping, DB: db, Prefixes: npd.Prefixes()}
		var observer *obs.Observer
		if cfg.RunLog != nil || cfg.Metrics != nil || cfg.Sampler != nil || cfg.SlowLog != nil {
			observer = &obs.Observer{
				// Plain tracing forces full retention; with a sampler
				// installed the retention decision is delegated to it.
				Tracing: cfg.RunLog != nil && cfg.Sampler == nil,
				Metrics: cfg.Metrics,
				Sampler: cfg.Sampler,
				SlowLog: cfg.SlowLog,
				Budget:  cfg.Budget,
			}
		}
		eng, err := core.NewEngine(spec, core.Options{
			TMappings:     true,
			Existential:   cfg.Existential,
			PlanCache:     cfg.PlanCache,
			PlanCacheSize: cfg.PlanCacheSize,
			Parallelism:   cfg.Parallelism,
			BatchSize:     cfg.BatchSize,
			Obs:           observer,
		})
		if err != nil {
			return nil, err
		}
		sm := ScaleMeasure{
			Scale:    k,
			DBRows:   db.TotalRows(),
			LoadTime: eng.LoadStats().LoadTime,
			GenTime:  genTime,
		}
		if cfg.CountTriples {
			counts, err := mapping.VirtualCounts(db)
			if err != nil {
				return nil, err
			}
			for _, n := range counts {
				sm.Triples += n
			}
		}
		var mixTime time.Duration
		for _, q := range queries {
			qm, err := measureQuery(eng, q, cfg, k)
			if err != nil {
				return nil, fmt.Errorf("mixer: NPD%g %s: %w", k, q.ID, err)
			}
			sm.Queries = append(sm.Queries, qm)
			mixTime += qm.AvgTotal
		}
		if mixTime > 0 {
			sm.QMPH = float64(time.Hour) / float64(mixTime)
		}
		rep.Scales = append(rep.Scales, sm)
	}
	return rep, nil
}

func selectQueries(cfg Config) []npd.BenchQuery {
	var out []npd.BenchQuery
	for _, q := range npd.Queries() {
		if cfg.SkipAggregates && q.Aggregate {
			continue
		}
		if len(cfg.QueryIDs) > 0 && !contains(cfg.QueryIDs, q.ID) {
			continue
		}
		out = append(out, q)
	}
	return out
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// runResult is one measured execution slot. done distinguishes a slot that
// ran (successfully or not) from one a failing client never reached — only
// completed runs enter the averages, so a zero-valued never-ran slot can't
// drag the means down.
type runResult struct {
	stats core.PhaseStats
	rows  int
	err   error
	done  bool
}

func measureQuery(eng *core.Engine, q npd.BenchQuery, cfg Config, scale float64) (QueryMeasure, error) {
	parsed, err := eng.ParseQuery(q.SPARQL)
	if err != nil {
		return QueryMeasure{}, err
	}
	for i := 0; i < cfg.Warmup; i++ {
		if _, err := eng.Answer(parsed); err != nil {
			return QueryMeasure{}, err
		}
	}
	clients := cfg.Clients
	if clients < 1 {
		clients = 1
	}
	results := make([]runResult, cfg.Runs*clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			// Per-client deep copy: the engine's pipeline stages are
			// audited mutation-free, but sharing one AST across goroutines
			// is exactly the kind of latent race a future in-place
			// transform would turn real. Each client evaluates its own
			// tree.
			query := parsed.Clone()
			for i := 0; i < cfg.Runs; i++ {
				ans, err := eng.AnswerNamed(query, q.ID)
				slot := &results[client*cfg.Runs+i]
				slot.done = true
				if err != nil {
					slot.err = err
					logRun(cfg, q.ID, scale, client, i, nil, err)
					return
				}
				slot.stats = ans.Stats
				slot.rows = ans.Len()
				logRun(cfg, q.ID, scale, client, i, ans, nil)
			}
		}(c)
	}
	wg.Wait()
	return aggregateRuns(q.ID, results)
}

// aggregateRuns folds the per-slot results into the query measure. Slots
// that never ran are skipped; failed slots count as Errors. The whole
// measurement errors out only when not a single run completed.
func aggregateRuns(queryID string, results []runResult) (QueryMeasure, error) {
	qm := QueryMeasure{QueryID: queryID}
	var totRewrite, totUnfold, totExec, totTranslate, totTotal time.Duration
	var rows int
	var weight float64
	var firstErr error
	samples := make([]float64, 0, len(results))
	for _, r := range results {
		if !r.done {
			continue
		}
		if r.err != nil {
			qm.Errors++
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		qm.Runs++
		totRewrite += r.stats.RewriteTime
		totUnfold += r.stats.UnfoldTime
		totExec += r.stats.ExecTime
		totTranslate += r.stats.TranslateTime
		totTotal += r.stats.TotalTime
		samples = append(samples, float64(r.stats.TotalTime))
		rows += r.rows
		weight += r.stats.WeightRU()
		qm.TreeWitnesses = r.stats.TreeWitnesses
		qm.CQs = r.stats.CQCount
		qm.UnionArms = r.stats.UnionArms
	}
	if qm.Runs == 0 {
		if firstErr == nil {
			firstErr = fmt.Errorf("no runs completed")
		}
		return QueryMeasure{}, firstErr
	}
	n := time.Duration(qm.Runs)
	qm.AvgRewrite = totRewrite / n
	qm.AvgUnfold = totUnfold / n
	qm.AvgExec = totExec / n
	qm.AvgTranslate = totTranslate / n
	qm.AvgTotal = totTotal / n
	qm.AvgRows = float64(rows) / float64(qm.Runs)
	qm.WeightRU = weight / float64(qm.Runs)
	mean := float64(qm.AvgTotal)
	var varSum float64
	for _, s := range samples {
		varSum += (s - mean) * (s - mean)
	}
	qm.StddevTotal = time.Duration(math.Sqrt(varSum / float64(len(samples))))
	qm.P50Total = time.Duration(obs.Percentile(samples, 50))
	qm.P95Total = time.Duration(obs.Percentile(samples, 95))
	qm.P99Total = time.Duration(obs.Percentile(samples, 99))
	return qm, nil
}

// logRun appends one execution to the configured JSONL run log.
func logRun(cfg Config, queryID string, scale float64, client, run int, ans *core.Answer, runErr error) {
	if cfg.RunLog == nil {
		return
	}
	rec := obs.RunRecord{
		Schema:  obs.RunLogSchemaVersion,
		TraceID: "untraced",
		Query:   queryID,
		Scale:   scale,
		Profile: cfg.Profile.String(),
		Client:  client,
		Run:     run,
	}
	if runErr != nil {
		rec.Error = runErr.Error()
	}
	if ans != nil {
		if ans.Trace != nil {
			rec.TraceID = ans.Trace.ID
		}
		rec.RewriteUS = ans.Stats.RewriteTime.Microseconds()
		rec.UnfoldUS = ans.Stats.UnfoldTime.Microseconds()
		rec.ExecUS = ans.Stats.ExecTime.Microseconds()
		rec.TranslateUS = ans.Stats.TranslateTime.Microseconds()
		rec.TotalUS = ans.Stats.TotalTime.Microseconds()
		rec.AbandonedUS = ans.Stats.PushdownAbandoned.Microseconds()
		rec.Rows = ans.Len()
		rec.CQs = ans.Stats.CQCount
		rec.UnionArms = ans.Stats.UnionArms
		rec.CacheHits = ans.Stats.PlanCacheHits
		rec.CacheMisses = ans.Stats.PlanCacheMisses
		rec.Usage = ans.Stats.Usage
	}
	// Write failures must not abort a measurement run; the validator in
	// ci.sh catches a truncated log.
	_ = cfg.RunLog.Write(rec)
}
