package mixer

import (
	"errors"
	"testing"
	"time"

	"npdbench/internal/core"
)

func okRun(total time.Duration, rows int) runResult {
	return runResult{
		stats: core.PhaseStats{
			RewriteTime:   total / 10,
			UnfoldTime:    total / 10,
			ExecTime:      total / 2,
			TranslateTime: total / 10,
			TotalTime:     total,
		},
		rows: rows,
		done: true,
	}
}

func TestAggregateRunsSkipsNeverRanSlots(t *testing.T) {
	boom := errors.New("client died")
	results := []runResult{
		okRun(10*time.Millisecond, 4),
		okRun(20*time.Millisecond, 4),
		{err: boom, done: true}, // failed run
		{},                      // slot never ran: client aborted earlier
		{},
	}
	qm, err := aggregateRuns("q2", results)
	if err != nil {
		t.Fatal(err)
	}
	if qm.Runs != 2 {
		t.Fatalf("Runs = %d, want 2 (only completed successes)", qm.Runs)
	}
	if qm.Errors != 1 {
		t.Fatalf("Errors = %d, want 1", qm.Errors)
	}
	// Averages divide by completed runs; zero-valued never-ran slots must
	// not drag them down (5 slots would give 6ms, 2 gives 15ms).
	if qm.AvgTotal != 15*time.Millisecond {
		t.Fatalf("AvgTotal = %v, want 15ms", qm.AvgTotal)
	}
	if qm.AvgRows != 4 {
		t.Fatalf("AvgRows = %g, want 4", qm.AvgRows)
	}
}

func TestAggregateRunsAllFailed(t *testing.T) {
	boom := errors.New("client died")
	if _, err := aggregateRuns("q2", []runResult{{err: boom, done: true}, {}}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the first client error", err)
	}
	if _, err := aggregateRuns("q2", []runResult{{}, {}}); err == nil {
		t.Fatal("all-never-ran slots must yield an error, not a zero measure")
	}
}

// TestConcurrentClientsAllQueries pins the shared-parsed-query race: several
// client goroutines run all 21 NPD queries against one engine. The ci.sh
// -race run turns any in-place AST mutation into a failure here.
func TestConcurrentClientsAllQueries(t *testing.T) {
	cfg := smallConfig()
	cfg.Scales = []float64{1}
	cfg.QueryIDs = nil // all 21
	cfg.Clients = 3
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Scales) != 1 {
		t.Fatalf("scales = %d", len(rep.Scales))
	}
	qs := rep.Scales[0].Queries
	if len(qs) != 21 {
		t.Fatalf("queries = %d, want 21", len(qs))
	}
	for _, q := range qs {
		if q.Runs != cfg.Runs*cfg.Clients {
			t.Fatalf("%s: Runs = %d, want %d completed", q.QueryID, q.Runs, cfg.Runs*cfg.Clients)
		}
		if q.Errors != 0 {
			t.Fatalf("%s: %d errors", q.QueryID, q.Errors)
		}
	}
}
