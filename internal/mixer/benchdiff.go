package mixer

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"npdbench/internal/obs"
)

// Bench-regression differ: compares two benchmark result files — committed
// parbench reports (BENCH_parallel.json), batchbench reports
// (BENCH_batch.json), or JSONL run logs — per query, on the p50/p95 of
// total latency. It is noise-aware: a query
// only counts as regressed when BOTH percentiles move past the relative
// threshold, the absolute move clears a floor (sub-floor timings are
// dominated by scheduler jitter), and both sides have enough runs for
// the percentiles to mean anything. `mixer -benchdiff old new` exits
// nonzero on any regression — the ci perf-trajectory gate.

// DiffOptions tunes the regression judgement.
type DiffOptions struct {
	// Threshold is the relative slowdown that counts as a regression
	// (0.30 = +30%). Both p50 and p95 must exceed it.
	Threshold float64
	// MinRuns is the minimum sample count on both sides; below it the
	// query is reported but never judged (percentiles of one or two
	// runs are noise).
	MinRuns int
	// Floor is the absolute p50 delta a regression must also clear;
	// queries this fast are judged only on absolute movement past it.
	Floor time.Duration
}

// DefaultDiffOptions returns the ci defaults: +30% on both percentiles,
// at least 3 runs per side, 500µs absolute floor.
func DefaultDiffOptions() DiffOptions {
	return DiffOptions{Threshold: 0.30, MinRuns: 3, Floor: 500 * time.Microsecond}
}

// benchSeries is one query's latency summary extracted from a result file.
type benchSeries struct {
	key      string
	p50, p95 float64 // microseconds
	runs     int
}

// DiffEntry is the judgement for one query key.
type DiffEntry struct {
	Key      string
	OldP50US float64
	NewP50US float64
	OldP95US float64
	NewP95US float64
	// DeltaP50/DeltaP95 are fractional changes (0.25 = +25%); zero when
	// the old side is zero.
	DeltaP50 float64
	DeltaP95 float64
	Runs     int // min(old runs, new runs)
	// Verdict is one of "ok", "improved", "regressed", "few-runs",
	// "below-floor", "added", "removed".
	Verdict string
}

// DiffReport is the full comparison.
type DiffReport struct {
	Entries     []DiffEntry
	Regressions int
	Improved    int
	Skipped     int // few-runs + below-floor
}

// BenchDiffFiles loads and diffs two benchmark result files. Each file
// may be a parbench JSON report (queries keyed "qN@pK" per parallelism
// level), a batchbench JSON report (keyed "qN@bK" per batch size), or a
// JSONL run log (keyed by query id); the two files must not
// mix formats in a way that leaves no common keys, but the differ itself
// only matches on keys.
func BenchDiffFiles(oldPath, newPath string, opt DiffOptions) (*DiffReport, error) {
	oldData, err := os.ReadFile(oldPath)
	if err != nil {
		return nil, fmt.Errorf("benchdiff: %w", err)
	}
	newData, err := os.ReadFile(newPath)
	if err != nil {
		return nil, fmt.Errorf("benchdiff: %w", err)
	}
	oldSeries, oldOrder, err := extractSeries(oldData)
	if err != nil {
		return nil, fmt.Errorf("benchdiff: %s: %w", oldPath, err)
	}
	newSeries, newOrder, err := extractSeries(newData)
	if err != nil {
		return nil, fmt.Errorf("benchdiff: %s: %w", newPath, err)
	}
	return diffSeries(oldSeries, oldOrder, newSeries, newOrder, opt), nil
}

// extractSeries parses a result file into per-query latency summaries.
// A file that decodes as one JSON document with a non-empty "levels"
// array is a parbench report; anything else is treated as a JSONL run
// log (whose lines also start with '{', so a leading-brace sniff cannot
// distinguish the two).
func extractSeries(data []byte) (map[string]benchSeries, []string, error) {
	trimmed := strings.TrimSpace(string(data))
	if trimmed == "" {
		return nil, nil, fmt.Errorf("empty benchmark file")
	}
	if rep, ok := decodeBatchbench([]byte(trimmed)); ok {
		return batchbenchSeries(rep)
	}
	if rep, ok := decodeParbench([]byte(trimmed)); ok {
		return parbenchSeries(rep)
	}
	return runlogSeries(trimmed)
}

// decodeBatchbench reports whether data is a single batchbench report
// document. It must be sniffed before parbench: both formats carry a
// "levels" array, but only batchbench levels have a nonzero batch_size
// (a parbench level decoded here leaves BatchSize at zero).
func decodeBatchbench(data []byte) (*BatchBenchReport, bool) {
	dec := json.NewDecoder(bytes.NewReader(data))
	var rep BatchBenchReport
	if err := dec.Decode(&rep); err != nil {
		return nil, false
	}
	if dec.More() {
		return nil, false
	}
	return &rep, len(rep.Levels) > 0 && rep.Levels[0].BatchSize > 0
}

func batchbenchSeries(rep *BatchBenchReport) (map[string]benchSeries, []string, error) {
	out := make(map[string]benchSeries)
	var order []string
	for _, lvl := range rep.Levels {
		for _, q := range lvl.Queries {
			key := fmt.Sprintf("%s@b%d", q.QueryID, lvl.BatchSize)
			out[key] = benchSeries{
				key:  key,
				p50:  q.P50MS * 1000,
				p95:  q.P95MS * 1000,
				runs: rep.Runs,
			}
			order = append(order, key)
		}
	}
	return out, order, nil
}

// decodeParbench reports whether data is a single parbench report
// document. A JSONL log fails here: the decoder finds trailing values
// after the first record.
func decodeParbench(data []byte) (*ParBenchReport, bool) {
	dec := json.NewDecoder(bytes.NewReader(data))
	var rep ParBenchReport
	if err := dec.Decode(&rep); err != nil {
		return nil, false
	}
	if dec.More() {
		return nil, false
	}
	return &rep, len(rep.Levels) > 0
}

func parbenchSeries(rep *ParBenchReport) (map[string]benchSeries, []string, error) {
	out := make(map[string]benchSeries)
	var order []string
	for _, lvl := range rep.Levels {
		for _, q := range lvl.Queries {
			key := fmt.Sprintf("%s@p%d", q.QueryID, lvl.Parallelism)
			out[key] = benchSeries{
				key:  key,
				p50:  q.P50MS * 1000,
				p95:  q.P95MS * 1000,
				runs: rep.Runs,
			}
			order = append(order, key)
		}
	}
	return out, order, nil
}

func runlogSeries(text string) (map[string]benchSeries, []string, error) {
	samples := make(map[string][]float64)
	var order []string
	n := 0
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		n++
		var rec obs.RunRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return nil, nil, fmt.Errorf("line %d: malformed JSON: %w", n, err)
		}
		if rec.Query == "" {
			return nil, nil, fmt.Errorf("line %d: missing query", n)
		}
		if rec.Error != "" {
			continue // failed runs carry partial timings
		}
		if _, seen := samples[rec.Query]; !seen {
			order = append(order, rec.Query)
		}
		samples[rec.Query] = append(samples[rec.Query], float64(rec.TotalUS))
	}
	if len(samples) == 0 {
		return nil, nil, fmt.Errorf("no successful records")
	}
	out := make(map[string]benchSeries, len(samples))
	for q, s := range samples {
		out[q] = benchSeries{
			key:  q,
			p50:  obs.Percentile(s, 50),
			p95:  obs.Percentile(s, 95),
			runs: len(s),
		}
	}
	return out, order, nil
}

func diffSeries(oldS map[string]benchSeries, oldOrder []string, newS map[string]benchSeries, newOrder []string, opt DiffOptions) *DiffReport {
	if opt.Threshold <= 0 {
		opt.Threshold = DefaultDiffOptions().Threshold
	}
	if opt.MinRuns <= 0 {
		opt.MinRuns = DefaultDiffOptions().MinRuns
	}
	if opt.Floor <= 0 {
		opt.Floor = DefaultDiffOptions().Floor
	}
	rep := &DiffReport{}
	seen := make(map[string]bool)
	for _, key := range oldOrder {
		if seen[key] {
			continue
		}
		seen[key] = true
		o := oldS[key]
		n, ok := newS[key]
		if !ok {
			rep.Entries = append(rep.Entries, DiffEntry{Key: key, OldP50US: o.p50, OldP95US: o.p95, Verdict: "removed"})
			continue
		}
		rep.Entries = append(rep.Entries, judge(o, n, opt, rep))
	}
	added := make([]string, 0)
	for _, key := range newOrder {
		if !seen[key] {
			seen[key] = true
			added = append(added, key)
		}
	}
	sort.Strings(added)
	for _, key := range added {
		n := newS[key]
		rep.Entries = append(rep.Entries, DiffEntry{Key: key, NewP50US: n.p50, NewP95US: n.p95, Runs: n.runs, Verdict: "added"})
	}
	return rep
}

// judge applies the noise guards and classifies one shared query key.
func judge(o, n benchSeries, opt DiffOptions, rep *DiffReport) DiffEntry {
	e := DiffEntry{
		Key:      o.key,
		OldP50US: o.p50, NewP50US: n.p50,
		OldP95US: o.p95, NewP95US: n.p95,
		Runs: o.runs,
	}
	if n.runs < e.Runs {
		e.Runs = n.runs
	}
	if o.p50 > 0 {
		e.DeltaP50 = (n.p50 - o.p50) / o.p50
	}
	if o.p95 > 0 {
		e.DeltaP95 = (n.p95 - o.p95) / o.p95
	}
	floorUS := float64(opt.Floor.Microseconds())
	switch {
	case e.Runs < opt.MinRuns:
		e.Verdict = "few-runs"
		rep.Skipped++
	case o.p50 == 0 || o.p95 == 0:
		// A zero baseline percentile has no meaningful percent delta —
		// dividing by it would judge the query on Inf/NaN (or, with the
		// deltas silently left at zero, mask a real regression as "ok").
		e.Verdict = "below-floor"
		rep.Skipped++
	case e.DeltaP50 > opt.Threshold && e.DeltaP95 > opt.Threshold:
		if n.p50-o.p50 < floorUS {
			// Past the relative threshold, but the absolute move is
			// inside the noise floor — tiny queries swing wildly in
			// percent without meaning anything.
			e.Verdict = "below-floor"
			rep.Skipped++
			break
		}
		e.Verdict = "regressed"
		rep.Regressions++
	case e.DeltaP50 < -opt.Threshold && e.DeltaP95 < -opt.Threshold:
		e.Verdict = "improved"
		rep.Improved++
	default:
		e.Verdict = "ok"
	}
	return e
}

// String renders the report as an aligned table plus a summary line.
func (r *DiffReport) String() string {
	tab := newTextTable("query", "old p50", "new p50", "d-p50", "old p95", "new p95", "d-p95", "runs", "verdict")
	for _, e := range r.Entries {
		tab.add(
			e.Key,
			fmtUS(e.OldP50US), fmtUS(e.NewP50US), fmtDelta(e.DeltaP50),
			fmtUS(e.OldP95US), fmtUS(e.NewP95US), fmtDelta(e.DeltaP95),
			fmt.Sprintf("%d", e.Runs),
			e.Verdict,
		)
	}
	var sb strings.Builder
	sb.WriteString(tab.String())
	fmt.Fprintf(&sb, "\nbenchdiff: %d queries, %d regressed, %d improved, %d skipped\n",
		len(r.Entries), r.Regressions, r.Improved, r.Skipped)
	return sb.String()
}

func fmtUS(us float64) string {
	switch {
	case us <= 0:
		return "-"
	case us >= 1e6:
		return fmt.Sprintf("%.2fs", us/1e6)
	case us >= 1e3:
		return fmt.Sprintf("%.2fms", us/1e3)
	default:
		return fmt.Sprintf("%.0fµs", us)
	}
}

func fmtDelta(d float64) string {
	if d == 0 {
		return "±0%"
	}
	return fmt.Sprintf("%+.1f%%", d*100)
}
