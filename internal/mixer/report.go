package mixer

import (
	"fmt"
	"strings"
	"time"
)

// textTable is a minimal fixed-width table renderer for the benchmark
// reports.
type textTable struct {
	header []string
	rows   [][]string
}

func newTextTable(header ...string) *textTable {
	return &textTable{header: header}
}

func (t *textTable) add(cells ...string) {
	for len(cells) < len(t.header) {
		cells = append(cells, "")
	}
	t.rows = append(t.rows, cells)
}

func (t *textTable) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// Summary renders the full report: one tractable-queries table plus the
// per-scale query breakdowns.
func (r *Report) Summary() string {
	var sb strings.Builder
	sb.WriteString(TractableTable(r, fmt.Sprintf("Tractable queries (%s profile)", r.Config.Profile)))
	sb.WriteByte('\n')
	for _, sm := range r.Scales {
		sb.WriteString(QueryBreakdown(sm))
		sb.WriteByte('\n')
	}
	return sb.String()
}
