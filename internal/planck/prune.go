package planck

import (
	"strconv"

	"npdbench/internal/owl"
	"npdbench/internal/rdf"
	"npdbench/internal/rewrite"
)

// PruneResult reports the outcome of static UCQ pruning.
type PruneResult struct {
	// Kept is the satisfiable remainder of the input UCQ (possibly empty:
	// the query is provably answerless).
	Kept rewrite.UCQ
	// Dropped counts the deleted disjuncts.
	Dropped int
	// Reasons explains each deletion, in input order.
	Reasons []string
}

// PruneUCQ deletes statically unsatisfiable disjuncts from a UCQ before
// unfolding: a disjunct whose inferred type environment is contradictory
// (a variable typed with two disjoint concepts, or forced to be both IRI
// and literal — disjointness and domain/range axioms of the OWL 2 QL TBox
// do the work), or that asserts two disjoint object properties over the
// same term pair, can contribute no certain answers in any consistent
// data instance and is deleted without ever reaching the unfolder's
// mapping-candidate walk.
func PruneUCQ(ucq rewrite.UCQ, onto *owl.Ontology) PruneResult {
	res := PruneResult{}
	for _, cq := range ucq {
		if reason := UnsatCQ(cq, onto); reason != "" {
			res.Dropped++
			res.Reasons = append(res.Reasons, cq.String()+": "+reason)
			continue
		}
		res.Kept = append(res.Kept, cq)
	}
	return res
}

// UnsatCQ reports why a CQ is statically unsatisfiable, or "" when no
// contradiction is provable.
func UnsatCQ(cq *rewrite.CQ, onto *owl.Ontology) string {
	if c := InferTypes(cq, onto).Conflict(onto); c != nil {
		return c.String()
	}
	if onto == nil {
		return ""
	}
	// Disjoint object properties over the same term pair.
	for i, a := range cq.Atoms {
		if a.Kind != rewrite.ObjPropAtom {
			continue
		}
		for _, b := range cq.Atoms[i+1:] {
			if b.Kind != rewrite.ObjPropAtom {
				continue
			}
			if a.S.String() != b.S.String() || a.O.String() != b.O.String() {
				continue
			}
			if propsDisjoint(onto, a.Pred, b.Pred) {
				return "disjoint properties " + localName(a.Pred) + " and " + localName(b.Pred) +
					" asserted over (" + a.S.String() + "," + a.O.String() + ")"
			}
		}
	}
	return ""
}

// Bound is a variable/constant comparison extracted from a FILTER
// conjunction (the same fragment the engine pushes into SQL).
type Bound struct {
	Var string
	Op  string // "=", "!=", "<", "<=", ">", ">="
	Val rdf.Term
}

// UnsatisfiableBounds reports a contradiction within a conjunctive set of
// filter bounds, or "" when the set is satisfiable (as far as static
// analysis can tell). It proves emptiness of the value range left for a
// variable: conflicting equalities, an equality excluded by a
// disequality, an equality outside an inequality bound, and lower bounds
// exceeding upper bounds (an empty datatype range). Numeric and date
// literals are compared within their family; bounds mixing families are
// left to runtime evaluation.
func UnsatisfiableBounds(bounds []Bound) string {
	perVar := map[string][]Bound{}
	order := []string{}
	for _, b := range bounds {
		if _, seen := perVar[b.Var]; !seen {
			order = append(order, b.Var)
		}
		perVar[b.Var] = append(perVar[b.Var], b)
	}
	for _, v := range order {
		if reason := unsatVarBounds(perVar[v]); reason != "" {
			return "?" + v + " " + reason
		}
	}
	return ""
}

// boundVal is a comparable literal: a family tag plus an ordering key.
type boundVal struct {
	family string // "num", "date", "str", "bool"
	f      float64
	s      string
}

func (a boundVal) comparable(b boundVal) bool { return a.family == b.family }

func (a boundVal) cmp(b boundVal) int {
	if a.family == "num" {
		switch {
		case a.f < b.f:
			return -1
		case a.f > b.f:
			return 1
		}
		return 0
	}
	// dates order lexically in ISO form; strings and booleans use the
	// lexical order too (only equality conclusions are drawn from them).
	switch {
	case a.s < b.s:
		return -1
	case a.s > b.s:
		return 1
	}
	return 0
}

func literalBound(t rdf.Term) (boundVal, bool) {
	switch t.Datatype {
	case rdf.XSDInteger, rdf.XSDDecimal, rdf.XSDDouble:
		f, err := strconv.ParseFloat(t.Value, 64)
		if err != nil {
			return boundVal{}, false
		}
		return boundVal{family: "num", f: f}, true
	case rdf.XSDDate:
		return boundVal{family: "date", s: t.Value}, true
	case rdf.XSDBoolean:
		return boundVal{family: "bool", s: t.Value}, true
	case "", rdf.XSDString:
		return boundVal{family: "str", s: t.Value}, true
	}
	return boundVal{}, false
}

func unsatVarBounds(bounds []Bound) string {
	var eq, lo, hi *boundVal
	var loStrict, hiStrict bool
	var nes []boundVal
	for _, b := range bounds {
		v, ok := literalBound(b.Val)
		if !ok {
			continue
		}
		switch b.Op {
		case "=":
			if eq != nil {
				if !eq.comparable(v) {
					continue
				}
				if eq.cmp(v) != 0 {
					return "cannot equal both " + b.Val.Value + " and another constant"
				}
			}
			val := v
			eq = &val
		case "!=":
			nes = append(nes, v)
		case "<", "<=":
			// dates compare lexically in ISO form, numbers numerically;
			// strings are not range-ordered here (collation differences).
			if v.family == "str" || v.family == "bool" {
				continue
			}
			if hi == nil || v.cmp(*hi) < 0 || (v.cmp(*hi) == 0 && b.Op == "<") {
				val := v
				hi, hiStrict = &val, b.Op == "<"
			}
		case ">", ">=":
			if v.family == "str" || v.family == "bool" {
				continue
			}
			if lo == nil || v.cmp(*lo) > 0 || (v.cmp(*lo) == 0 && b.Op == ">") {
				val := v
				lo, loStrict = &val, b.Op == ">"
			}
		}
	}
	if eq != nil {
		for _, ne := range nes {
			if eq.comparable(ne) && eq.cmp(ne) == 0 {
				return "equality contradicts a disequality on the same constant"
			}
		}
		if lo != nil && eq.comparable(*lo) {
			if c := eq.cmp(*lo); c < 0 || (c == 0 && loStrict) {
				return "equality lies below the lower bound"
			}
		}
		if hi != nil && eq.comparable(*hi) {
			if c := eq.cmp(*hi); c > 0 || (c == 0 && hiStrict) {
				return "equality lies above the upper bound"
			}
		}
	}
	if lo != nil && hi != nil && lo.comparable(*hi) {
		if c := lo.cmp(*hi); c > 0 || (c == 0 && (loStrict || hiStrict)) {
			return "lower bound exceeds upper bound (empty value range)"
		}
	}
	return ""
}
