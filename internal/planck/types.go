package planck

import (
	"sort"
	"strings"

	"npdbench/internal/owl"
	"npdbench/internal/rewrite"
)

// VarType aggregates what the ontology lets us conclude about one CQ
// variable: whether it must denote an IRI (subject positions, object
// properties) or a literal (data-property objects), and the conjunction of
// concepts it is certainly an instance of.
type VarType struct {
	// IRI is true when some atom forces the variable to denote an IRI.
	IRI bool
	// Literal is true when some atom forces the variable to denote a
	// literal (it appears as the object of a data property).
	Literal bool
	// Concepts is the conjunction of entailed memberships: named classes
	// from class atoms, ∃P / ∃P⁻ / ∃U from property atoms. Domain and
	// range axioms are SubClass axioms over these concepts, so disjointness
	// checks through owl.Ontology.DisjointWith see them transitively.
	Concepts []owl.Concept
}

// TypeEnv maps variable names to their inferred types.
type TypeEnv map[string]*VarType

// InferTypes derives the type environment of a CQ. Every atom contributes
// membership constraints to its variable terms:
//
//	C(x)      ⇒ x : IRI, x ∈ C
//	P(x,y)    ⇒ x : IRI, x ∈ ∃P;  y : IRI, y ∈ ∃P⁻
//	U(x,v)    ⇒ x : IRI, x ∈ ∃U;  v : literal
//
// Constants contribute nothing (their types are their own).
func InferTypes(cq *rewrite.CQ, onto *owl.Ontology) TypeEnv {
	env := TypeEnv{}
	at := func(name string) *VarType {
		t := env[name]
		if t == nil {
			t = &VarType{}
			env[name] = t
		}
		return t
	}
	for _, a := range cq.Atoms {
		if a.S.IsVar() {
			s := at(a.S.Var)
			s.IRI = true
			switch a.Kind {
			case rewrite.ClassAtom:
				s.addConcept(owl.NamedConcept(a.Pred))
			case rewrite.ObjPropAtom:
				s.addConcept(owl.SomeValues(a.Pred, false))
			case rewrite.DataPropAtom:
				s.addConcept(owl.SomeData(a.Pred))
			}
		}
		if a.Kind == rewrite.ClassAtom || !a.O.IsVar() {
			continue
		}
		o := at(a.O.Var)
		if a.Kind == rewrite.ObjPropAtom {
			o.IRI = true
			o.addConcept(owl.SomeValues(a.Pred, true))
		} else {
			o.Literal = true
		}
	}
	_ = onto // the ontology interprets the concepts at check time
	return env
}

func (t *VarType) addConcept(c owl.Concept) {
	for _, have := range t.Concepts {
		if have == c {
			return
		}
	}
	t.Concepts = append(t.Concepts, c)
}

// Conflict describes why a type environment is unsatisfiable.
type Conflict struct {
	Var    string
	Reason string
}

// Conflict reports the first type contradiction in the environment, or nil
// when every variable is satisfiable: a variable cannot be both an IRI and
// a literal, and it cannot be an instance of two disjoint concepts
// (including a single concept that is itself unsatisfiable).
func (env TypeEnv) Conflict(onto *owl.Ontology) *Conflict {
	names := make([]string, 0, len(env))
	for v := range env {
		names = append(names, v)
	}
	sort.Strings(names)
	for _, v := range names {
		t := env[v]
		if t.IRI && t.Literal {
			return &Conflict{Var: v, Reason: "used as both IRI and literal"}
		}
		if onto == nil {
			continue
		}
		for i := 0; i < len(t.Concepts); i++ {
			for j := i; j < len(t.Concepts); j++ {
				if onto.DisjointWith(t.Concepts[i], t.Concepts[j]) {
					return &Conflict{
						Var:    v,
						Reason: "member of disjoint concepts " + t.Concepts[i].String() + " and " + t.Concepts[j].String(),
					}
				}
			}
		}
	}
	return nil
}

func (c *Conflict) String() string {
	if c == nil {
		return ""
	}
	return "?" + c.Var + " " + c.Reason
}

// propsDisjoint reports whether two object properties are entailed
// disjoint: some declared disjoint-property axiom (A,B) has p ⊑ A and
// q ⊑ B (or vice versa).
func propsDisjoint(onto *owl.Ontology, p, q string) bool {
	below := func(sub, sup owl.PropRef) bool {
		for _, s := range onto.SubPropertiesOf(sup) {
			if s == sub {
				return true
			}
		}
		return false
	}
	pr, qr := owl.PropRef{Prop: p}, owl.PropRef{Prop: q}
	for _, d := range onto.DisjointProps {
		if (below(pr, d.A) && below(qr, d.B)) || (below(pr, d.B) && below(qr, d.A)) {
			return true
		}
	}
	return false
}

// localName trims an IRI to its fragment/last path segment for diagnostics.
func localName(iri string) string {
	if i := strings.LastIndexAny(iri, "#/"); i >= 0 && i+1 < len(iri) {
		return iri[i+1:]
	}
	return iri
}
