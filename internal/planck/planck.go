// Package planck is the plan checker: a static-analysis layer over the
// queries and plans that flow through the OBDA pipeline. It provides
//
//   - a type-inference pass deriving per-variable types for conjunctive
//     queries from the OWL 2 QL ontology (class membership via class
//     atoms, domain/range axioms of property atoms, IRI-vs-literal
//     positions) — see InferTypes;
//   - a per-transform verifier checking structural invariants of each
//     intermediate representation (CQ/UCQ well-formedness, preservation
//     of the certain answer variables, SQL schema well-formedness,
//     column provenance against the relational catalog, NOT NULL guard
//     accounting for the constraint-driven unfolding) — see Verifier;
//   - static pruning of provably empty work: unsatisfiable CQ disjuncts
//     (disjoint classes, disjoint properties) and contradictory filter
//     bound sets are deleted before they reach the unfolder — see
//     PruneUCQ and UnsatisfiableBounds.
//
// Every check fails fast with a structured Violation naming the pipeline
// stage that produced the offending plan, so a broken transform is caught
// at its source rather than as a wrong answer three stages later.
package planck

import (
	"fmt"

	"npdbench/internal/analyze"
	"npdbench/internal/owl"
	"npdbench/internal/rewrite"
	"npdbench/internal/sqldb"
)

// Violation is a structured diagnostic produced by the verifier. It names
// the pipeline stage whose output broke an invariant, the invariant, and
// the offending construct.
type Violation struct {
	// Stage is the transform that produced the checked plan
	// ("translate", "rewrite", "static-prune", "unfold", ...).
	Stage string
	// Check identifies the invariant ("answer-preserved", "column-exists",
	// "projection-shape", ...).
	Check string
	// Detail describes the offending construct.
	Detail string
}

func (v *Violation) Error() string {
	return fmt.Sprintf("planck: stage %s: %s: %s", v.Stage, v.Check, v.Detail)
}

// Verifier checks pipeline invariants between transformation stages. The
// zero value performs purely structural checks; the ontology enables the
// type checks, the database catalog enables column provenance and SQL
// type-consistency checks, and the constraints artifact lets the verifier
// accept catalog-justified NOT NULL guard elisions.
type Verifier struct {
	Onto *owl.Ontology
	Cons *analyze.Constraints
	DB   *sqldb.Database
}

// violate builds a Violation error.
func violate(stage, check, format string, args ...interface{}) error {
	return &Violation{Stage: stage, Check: check, Detail: fmt.Sprintf(format, args...)}
}

// CheckCQ verifies the well-formedness of a single conjunctive query:
// non-empty predicates, class atoms without object terms, atom kinds
// agreeing with the ontology's property declarations, and every answer
// variable bound by at least one atom.
func (v *Verifier) CheckCQ(stage string, cq *rewrite.CQ) error {
	if cq == nil {
		return violate(stage, "cq-nil", "nil CQ")
	}
	if len(cq.Atoms) == 0 {
		return violate(stage, "cq-empty", "%s has no atoms", cq)
	}
	bound := map[string]bool{}
	for _, a := range cq.Atoms {
		if a.Pred == "" {
			return violate(stage, "atom-pred", "atom with empty predicate in %s", cq)
		}
		if !a.S.IsVar() && a.S.Const.IsZero() {
			return violate(stage, "atom-subject", "atom %s has no subject term", a)
		}
		if a.Kind == rewrite.ClassAtom {
			if a.O.IsVar() || !a.O.Const.IsZero() {
				return violate(stage, "atom-class-object", "class atom %s carries an object term", a)
			}
		} else if !a.O.IsVar() && a.O.Const.IsZero() {
			return violate(stage, "atom-object", "atom %s has no object term", a)
		}
		if v.Onto != nil {
			switch a.Kind {
			case rewrite.ClassAtom:
				if v.Onto.HasObjectProperty(a.Pred) || v.Onto.HasDataProperty(a.Pred) {
					return violate(stage, "atom-kind", "class atom %s uses a property IRI", a)
				}
			case rewrite.ObjPropAtom:
				if v.Onto.HasDataProperty(a.Pred) && !v.Onto.HasObjectProperty(a.Pred) {
					return violate(stage, "atom-kind", "object-property atom %s uses a data property", a)
				}
			case rewrite.DataPropAtom:
				if v.Onto.HasObjectProperty(a.Pred) && !v.Onto.HasDataProperty(a.Pred) {
					return violate(stage, "atom-kind", "data-property atom %s uses an object property", a)
				}
			}
		}
		for _, name := range a.Vars() {
			bound[name] = true
		}
	}
	for _, ans := range cq.Answer {
		if !bound[ans] {
			return violate(stage, "certain-var", "answer variable ?%s is unbound in %s", ans, cq)
		}
	}
	return nil
}

// CheckUCQ verifies a union of conjunctive queries: every disjunct must be
// well-formed, and every disjunct must preserve the required answer
// variables in the same order — the unfolder derives the SQL output layout
// from the first disjunct, so a divergent answer list would silently
// misalign the union columns.
func (v *Verifier) CheckUCQ(stage string, ucq rewrite.UCQ, answer []string) error {
	if len(ucq) == 0 {
		return violate(stage, "ucq-empty", "empty UCQ")
	}
	for i, cq := range ucq {
		if err := v.CheckCQ(stage, cq); err != nil {
			return err
		}
		if len(cq.Answer) != len(answer) {
			return violate(stage, "answer-preserved",
				"disjunct %d has %d answer variables, want %d (%s)", i, len(cq.Answer), len(answer), cq)
		}
		for j, a := range cq.Answer {
			if a != answer[j] {
				return violate(stage, "answer-preserved",
					"disjunct %d answer variable %d is ?%s, want ?%s (%s)", i, j, a, answer[j], cq)
			}
		}
	}
	return nil
}
