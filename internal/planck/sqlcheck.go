package planck

import (
	"strings"

	"npdbench/internal/sqldb"
)

// scopeEntry describes one FROM-clause alias visible to an arm: either a
// base table with a catalog definition (column provenance is exact) or a
// derived table with an output column list (exact when known).
type scopeEntry struct {
	table string          // base-table name, "" for derived tables
	def   *sqldb.TableDef // catalog definition, nil when unknown
	cols  map[string]bool // lower-cased output columns; nil = unknown
}

// CheckSQL verifies an unfolded SQL statement against the pipeline's
// output contract and the relational catalog:
//
//   - projection shape: every union arm projects exactly the (v, v_t,
//     v_dt) column triple per answer variable, under the canonical
//     aliases and in the canonical order;
//   - scoping: FROM aliases are unique per arm and every column reference
//     resolves to a visible alias;
//   - column provenance: references into base tables name existing
//     catalog columns (recursively inside derived tables);
//   - type consistency: comparisons whose operand types are statically
//     known must be executable (numeric/date families are mutually
//     comparable, anything else requires equal kinds);
//   - NOT NULL accounting: every base-table column feeding a projected
//     term carries an IS NOT NULL guard unless the constraints artifact
//     proves the catalog already forbids NULL (validating the unfolder's
//     guard elision).
func (v *Verifier) CheckSQL(stage string, stmt *sqldb.SelectStmt, vars []string) error {
	if stmt == nil {
		return violate(stage, "stmt-nil", "nil statement")
	}
	armNo := 0
	for arm := stmt; arm != nil; arm = arm.Union {
		if err := v.checkArm(stage, arm, vars, armNo); err != nil {
			return err
		}
		armNo++
	}
	return nil
}

func (v *Verifier) checkArm(stage string, arm *sqldb.SelectStmt, vars []string, armNo int) error {
	// Projection shape: 3 columns per answer variable, canonical aliases.
	if len(arm.Items) != 3*len(vars) {
		return violate(stage, "projection-shape",
			"arm %d projects %d columns, want %d (3 per variable)", armNo, len(arm.Items), 3*len(vars))
	}
	for i, varName := range vars {
		want := [3]string{"v_" + varName, "v_" + varName + "_t", "v_" + varName + "_dt"}
		for k := 0; k < 3; k++ {
			it := arm.Items[3*i+k]
			if it.Star {
				return violate(stage, "projection-shape", "arm %d projects a star item", armNo)
			}
			if it.Alias != want[k] {
				return violate(stage, "projection-shape",
					"arm %d column %d is aliased %q, want %q", armNo, 3*i+k, it.Alias, want[k])
			}
		}
	}
	scope, err := v.collectScope(stage, arm, armNo)
	if err != nil {
		return err
	}
	// Every column reference must resolve within the arm's scope.
	var exprs []sqldb.Expr
	for _, it := range arm.Items {
		exprs = append(exprs, it.Expr)
	}
	if arm.Where != nil {
		exprs = append(exprs, arm.Where)
	}
	exprs = append(exprs, arm.GroupBy...)
	if arm.Having != nil {
		exprs = append(exprs, arm.Having)
	}
	for _, o := range arm.OrderBy {
		exprs = append(exprs, o.Expr)
	}
	for _, e := range exprs {
		if err := v.checkExpr(stage, e, scope, armNo); err != nil {
			return err
		}
	}
	return v.checkGuards(stage, arm, scope, armNo)
}

// collectScope walks the FROM clause, registering aliases and recursively
// checking derived tables, and validates ON conditions in the arm scope.
func (v *Verifier) collectScope(stage string, arm *sqldb.SelectStmt, armNo int) (map[string]scopeEntry, error) {
	scope := map[string]scopeEntry{}
	var ons []sqldb.Expr
	var walk func(tr sqldb.TableRef) error
	walk = func(tr sqldb.TableRef) error {
		switch t := tr.(type) {
		case *sqldb.BaseTable:
			alias := t.Alias
			if alias == "" {
				alias = t.Name
			}
			key := strings.ToLower(alias)
			if _, dup := scope[key]; dup {
				return violate(stage, "alias-unique", "arm %d declares alias %q twice", armNo, alias)
			}
			entry := scopeEntry{table: t.Name}
			if v.DB != nil {
				tbl := v.DB.Table(t.Name)
				if tbl == nil {
					return violate(stage, "table-exists", "arm %d references unknown table %q", armNo, t.Name)
				}
				entry.def = tbl.Def
				entry.cols = map[string]bool{}
				for _, c := range tbl.Def.Columns {
					entry.cols[strings.ToLower(c.Name)] = true
				}
			}
			scope[key] = entry
		case *sqldb.SubqueryTable:
			key := strings.ToLower(t.Alias)
			if t.Alias == "" {
				return violate(stage, "alias-unique", "arm %d has an unaliased derived table", armNo)
			}
			if _, dup := scope[key]; dup {
				return violate(stage, "alias-unique", "arm %d declares alias %q twice", armNo, t.Alias)
			}
			entry, err := v.checkDerived(stage, t.Query, armNo)
			if err != nil {
				return err
			}
			scope[key] = entry
		case *sqldb.JoinRef:
			if err := walk(t.L); err != nil {
				return err
			}
			if err := walk(t.R); err != nil {
				return err
			}
			if t.On != nil {
				ons = append(ons, t.On)
			}
		}
		return nil
	}
	for _, tr := range arm.From {
		if err := walk(tr); err != nil {
			return nil, err
		}
	}
	for _, on := range ons {
		if err := v.checkExpr(stage, on, scope, armNo); err != nil {
			return nil, err
		}
	}
	return scope, nil
}

// checkDerived validates a derived table (an R2RML view) in its own scope
// and returns its scope entry: the output column set (nil when it cannot
// be determined, e.g. SELECT * from an uncataloged table) plus the
// underlying base table's identity when every output column is a plain
// column of a single base table under its own name — the provenance that
// lets NOT NULL guard accounting and type checks see through the view.
func (v *Verifier) checkDerived(stage string, q *sqldb.SelectStmt, armNo int) (scopeEntry, error) {
	scope, err := v.collectScope(stage, q, armNo)
	if err != nil {
		return scopeEntry{}, err
	}
	// Column provenance: a single-base-table view whose items are plain
	// (possibly starred) column references preserves the base columns'
	// catalog properties, whatever WHERE/DISTINCT/GROUP BY it applies.
	transparent := q.Union == nil && len(scope) == 1
	var base scopeEntry
	for _, e := range scope {
		if e.def == nil {
			transparent = false
		}
		base = e
	}
	var exprs []sqldb.Expr
	out := map[string]bool{}
	known := true
	for _, it := range q.Items {
		if it.Star {
			// output is the (qualified) scope's column set
			for key, e := range scope {
				if it.Table != "" && strings.ToLower(it.Table) != key {
					continue
				}
				if e.cols == nil {
					known = false
					continue
				}
				for c := range e.cols {
					out[c] = true
				}
			}
			continue
		}
		exprs = append(exprs, it.Expr)
		c, isCol := it.Expr.(*sqldb.ColRef)
		if !isCol || (it.Alias != "" && !strings.EqualFold(it.Alias, c.Name)) {
			transparent = false
		}
		switch {
		case it.Alias != "":
			out[strings.ToLower(it.Alias)] = true
		default:
			if isCol {
				out[strings.ToLower(c.Name)] = true
			} else {
				known = false
			}
		}
	}
	if q.Where != nil {
		exprs = append(exprs, q.Where)
	}
	for _, e := range exprs {
		if err := v.checkExpr(stage, e, scope, armNo); err != nil {
			return scopeEntry{}, err
		}
	}
	for u := q.Union; u != nil; u = u.Union {
		if _, err := v.checkDerived(stage, u, armNo); err != nil {
			return scopeEntry{}, err
		}
	}
	if !known {
		out = nil
	}
	entry := scopeEntry{cols: out}
	if transparent {
		entry.table = base.table
		entry.def = base.def
	}
	return entry, nil
}

// checkExpr resolves every column reference in the expression against the
// scope and checks comparison type consistency.
func (v *Verifier) checkExpr(stage string, e sqldb.Expr, scope map[string]scopeEntry, armNo int) error {
	var fail error
	sqldb.WalkExpr(e, func(x sqldb.Expr) {
		if fail != nil {
			return
		}
		switch n := x.(type) {
		case *sqldb.ColRef:
			if err := resolveCol(stage, n, scope, armNo); err != nil {
				fail = err
			}
		case *sqldb.BinOp:
			switch n.Op {
			case sqldb.OpEq, sqldb.OpNe, sqldb.OpLt, sqldb.OpLe, sqldb.OpGt, sqldb.OpGe:
				lk, lok := staticKind(n.L, scope)
				rk, rok := staticKind(n.R, scope)
				if lok && rok && !kindsComparable(lk, rk) {
					fail = violate(stage, "comparison-types",
						"arm %d compares %s with %s in %s", armNo, lk, rk, n)
				}
			}
		}
	})
	return fail
}

func resolveCol(stage string, c *sqldb.ColRef, scope map[string]scopeEntry, armNo int) error {
	if c.Table == "" {
		// Unqualified: must exist in at least one scope entry with a known
		// column set, or some entry must have an unknown set.
		anyUnknown := false
		for _, e := range scope {
			if e.cols == nil {
				anyUnknown = true
				continue
			}
			if e.cols[strings.ToLower(c.Name)] {
				return nil
			}
		}
		if anyUnknown {
			return nil
		}
		return violate(stage, "column-exists", "arm %d references unknown column %q", armNo, c.Name)
	}
	e, ok := scope[strings.ToLower(c.Table)]
	if !ok {
		return violate(stage, "alias-resolves", "arm %d references undeclared alias %q (%s)", armNo, c.Table, c)
	}
	if e.cols != nil && !e.cols[strings.ToLower(c.Name)] {
		return violate(stage, "column-exists", "arm %d references column %s absent from its source", armNo, c)
	}
	return nil
}

// staticKind computes the value kind of an expression when statically
// known: literals carry their kind, column references take the catalog
// type, string concatenation yields a string.
func staticKind(e sqldb.Expr, scope map[string]scopeEntry) (sqldb.Kind, bool) {
	switch n := e.(type) {
	case *sqldb.Lit:
		if n.Val.IsNull() {
			return 0, false
		}
		return n.Val.Kind, true
	case *sqldb.ColRef:
		se, ok := scope[strings.ToLower(n.Table)]
		if !ok || se.def == nil {
			return 0, false
		}
		i := se.def.ColIndex(n.Name)
		if i < 0 {
			return 0, false
		}
		return se.def.Columns[i].Type.Kind(), true
	case *sqldb.BinOp:
		if n.Op == sqldb.OpConcat {
			return sqldb.KindString, true
		}
	}
	return 0, false
}

// kindsComparable mirrors sqldb.Compare: int, float and date coerce to a
// common numeric axis; every other comparison requires equal kinds.
func kindsComparable(a, b sqldb.Kind) bool {
	num := func(k sqldb.Kind) bool {
		return k == sqldb.KindInt || k == sqldb.KindFloat || k == sqldb.KindDate
	}
	if num(a) && num(b) {
		return true
	}
	return a == b
}

// checkGuards verifies the NOT NULL accounting of an arm: every base-table
// column feeding a projected term must either carry an IS NOT NULL guard
// in the WHERE conjunction or be provably NOT NULL per the constraints
// artifact (the only condition under which the unfolder elides the guard).
func (v *Verifier) checkGuards(stage string, arm *sqldb.SelectStmt, scope map[string]scopeEntry, armNo int) error {
	guarded := map[string]bool{}
	for _, cj := range sqldb.Conjuncts(arm.Where) {
		if g, ok := cj.(*sqldb.IsNullExpr); ok && g.Negate {
			if c, okc := g.E.(*sqldb.ColRef); okc {
				guarded[strings.ToLower(c.Table+"."+c.Name)] = true
			}
		}
	}
	for _, it := range arm.Items {
		for _, c := range sqldb.ColumnRefs(it.Expr) {
			if guarded[strings.ToLower(c.Table+"."+c.Name)] {
				continue
			}
			e, ok := scope[strings.ToLower(c.Table)]
			if ok && e.def != nil && v.Cons != nil && v.Cons.IsNotNull(e.table, c.Name) {
				continue
			}
			return violate(stage, "notnull-guard",
				"arm %d projects %s without an IS NOT NULL guard or catalog NOT NULL proof", armNo, c)
		}
	}
	return nil
}
