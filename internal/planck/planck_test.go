package planck

import (
	"strings"
	"testing"

	"npdbench/internal/analyze"
	"npdbench/internal/owl"
	"npdbench/internal/r2rml"
	"npdbench/internal/rdf"
	"npdbench/internal/rewrite"
	"npdbench/internal/sqldb"
)

const ns = "http://example.org/"

// testOntology mirrors the structure the NPD ontology uses: a class
// hierarchy with declared disjointness, domain/range axioms, and a
// disjoint-property pair.
func testOntology() *owl.Ontology {
	o := owl.New(ns + "onto")
	for _, c := range []string{"Wellbore", "Company", "Field", "ExplorationWellbore", "DevelopmentWellbore"} {
		o.DeclareClass(ns + c)
	}
	o.AddSubClass(owl.NamedConcept(ns+"ExplorationWellbore"), owl.NamedConcept(ns+"Wellbore"))
	o.AddSubClass(owl.NamedConcept(ns+"DevelopmentWellbore"), owl.NamedConcept(ns+"Wellbore"))
	o.AddDisjoint(owl.NamedConcept(ns+"Wellbore"), owl.NamedConcept(ns+"Company"))
	o.AddDisjoint(owl.NamedConcept(ns+"ExplorationWellbore"), owl.NamedConcept(ns+"DevelopmentWellbore"))
	o.DeclareObjectProperty(ns + "drilledBy")
	o.AddDomain(ns+"drilledBy", false, ns+"Wellbore")
	o.AddRange(ns+"drilledBy", ns+"Company")
	o.DeclareDataProperty(ns + "name")
	o.DeclareObjectProperty(ns + "inFacility")
	o.DeclareObjectProperty(ns + "outFacility")
	o.AddDisjointProperties(owl.PropRef{Prop: ns + "inFacility"}, owl.PropRef{Prop: ns + "outFacility"})
	return o
}

func classAtom(c, v string) rewrite.Atom {
	return rewrite.Atom{Kind: rewrite.ClassAtom, Pred: ns + c, S: rewrite.Term{Var: v}}
}

func objAtom(p, s, o string) rewrite.Atom {
	return rewrite.Atom{Kind: rewrite.ObjPropAtom, Pred: ns + p, S: rewrite.Term{Var: s}, O: rewrite.Term{Var: o}}
}

func dataAtom(p, s, o string) rewrite.Atom {
	return rewrite.Atom{Kind: rewrite.DataPropAtom, Pred: ns + p, S: rewrite.Term{Var: s}, O: rewrite.Term{Var: o}}
}

func TestInferTypesDisjointClassConflict(t *testing.T) {
	onto := testOntology()
	cq := &rewrite.CQ{
		Atoms:  []rewrite.Atom{classAtom("Wellbore", "x"), classAtom("Company", "x")},
		Answer: []string{"x"},
	}
	c := InferTypes(cq, onto).Conflict(onto)
	if c == nil {
		t.Fatal("expected disjoint-class conflict for ?x")
	}
	if c.Var != "x" || !strings.Contains(c.Reason, "disjoint") {
		t.Fatalf("unexpected conflict: %v", c)
	}
}

func TestInferTypesRangeVsClassConflict(t *testing.T) {
	onto := testOntology()
	// ?y is in the range of drilledBy (⊑ Company) and asserted a Wellbore:
	// the domain/range axioms make ∃drilledBy⁻ ⊑ Company, disjoint with
	// Wellbore.
	cq := &rewrite.CQ{
		Atoms:  []rewrite.Atom{objAtom("drilledBy", "x", "y"), classAtom("Wellbore", "y")},
		Answer: []string{"x"},
	}
	if c := InferTypes(cq, onto).Conflict(onto); c == nil {
		t.Fatal("expected range-vs-class conflict for ?y")
	}
	// The satisfiable variant must pass.
	sat := &rewrite.CQ{
		Atoms:  []rewrite.Atom{objAtom("drilledBy", "x", "y"), classAtom("Company", "y")},
		Answer: []string{"x"},
	}
	if c := InferTypes(sat, onto).Conflict(onto); c != nil {
		t.Fatalf("satisfiable CQ flagged: %v", c)
	}
}

func TestInferTypesIRILiteralConflict(t *testing.T) {
	onto := testOntology()
	// ?y is an object-property object (IRI) and a data-property object
	// (literal) at once.
	cq := &rewrite.CQ{
		Atoms:  []rewrite.Atom{objAtom("drilledBy", "x", "y"), dataAtom("name", "z", "y")},
		Answer: []string{"x"},
	}
	c := InferTypes(cq, onto).Conflict(onto)
	if c == nil || c.Var != "y" {
		t.Fatalf("expected IRI/literal conflict for ?y, got %v", c)
	}
}

func TestUnsatCQDisjointProperties(t *testing.T) {
	onto := testOntology()
	cq := &rewrite.CQ{
		Atoms:  []rewrite.Atom{objAtom("inFacility", "x", "y"), objAtom("outFacility", "x", "y")},
		Answer: []string{"x"},
	}
	if reason := UnsatCQ(cq, onto); reason == "" {
		t.Fatal("expected disjoint-property contradiction")
	}
	// Different term pairs: no contradiction.
	sat := &rewrite.CQ{
		Atoms:  []rewrite.Atom{objAtom("inFacility", "x", "y"), objAtom("outFacility", "x", "z")},
		Answer: []string{"x"},
	}
	if reason := UnsatCQ(sat, onto); reason != "" {
		t.Fatalf("satisfiable CQ flagged: %s", reason)
	}
}

func TestPruneUCQ(t *testing.T) {
	onto := testOntology()
	bad := &rewrite.CQ{
		Atoms:  []rewrite.Atom{classAtom("ExplorationWellbore", "x"), classAtom("DevelopmentWellbore", "x")},
		Answer: []string{"x"},
	}
	good := &rewrite.CQ{
		Atoms:  []rewrite.Atom{classAtom("Wellbore", "x")},
		Answer: []string{"x"},
	}
	res := PruneUCQ(rewrite.UCQ{bad, good}, onto)
	if res.Dropped != 1 || len(res.Kept) != 1 || res.Kept[0] != good {
		t.Fatalf("dropped=%d kept=%d", res.Dropped, len(res.Kept))
	}
	if len(res.Reasons) != 1 || !strings.Contains(res.Reasons[0], "disjoint") {
		t.Fatalf("reasons: %v", res.Reasons)
	}
}

func intLit(s string) rdf.Term  { return rdf.NewTypedLiteral(s, rdf.XSDInteger) }
func dateLit(s string) rdf.Term { return rdf.NewTypedLiteral(s, rdf.XSDDate) }

func TestUnsatisfiableBounds(t *testing.T) {
	cases := []struct {
		name   string
		bounds []Bound
		unsat  bool
	}{
		{"conflicting equalities", []Bound{
			{Var: "x", Op: "=", Val: intLit("1")},
			{Var: "x", Op: "=", Val: intLit("2")},
		}, true},
		{"equality vs disequality", []Bound{
			{Var: "x", Op: "=", Val: intLit("5")},
			{Var: "x", Op: "!=", Val: intLit("5")},
		}, true},
		{"equality above upper bound", []Bound{
			{Var: "x", Op: "=", Val: intLit("10")},
			{Var: "x", Op: "<", Val: intLit("10")},
		}, true},
		{"empty numeric range", []Bound{
			{Var: "x", Op: ">", Val: intLit("7")},
			{Var: "x", Op: "<", Val: intLit("3")},
		}, true},
		{"empty date range", []Bound{
			{Var: "d", Op: ">=", Val: dateLit("2010-01-01")},
			{Var: "d", Op: "<=", Val: dateLit("2009-01-01")},
		}, true},
		{"touching closed bounds are satisfiable", []Bound{
			{Var: "x", Op: ">=", Val: intLit("3")},
			{Var: "x", Op: "<=", Val: intLit("3")},
		}, false},
		{"touching half-open bounds are empty", []Bound{
			{Var: "x", Op: ">", Val: intLit("3")},
			{Var: "x", Op: "<=", Val: intLit("3")},
		}, true},
		{"independent variables do not interact", []Bound{
			{Var: "x", Op: ">", Val: intLit("7")},
			{Var: "y", Op: "<", Val: intLit("3")},
		}, false},
		{"mixed families are left to runtime", []Bound{
			{Var: "x", Op: "=", Val: intLit("1")},
			{Var: "x", Op: "=", Val: rdf.NewLiteral("one")},
		}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reason := UnsatisfiableBounds(tc.bounds)
			if tc.unsat && reason == "" {
				t.Fatal("expected contradiction")
			}
			if !tc.unsat && reason != "" {
				t.Fatalf("unexpected contradiction: %s", reason)
			}
		})
	}
}

func TestCheckCQViolations(t *testing.T) {
	onto := testOntology()
	v := &Verifier{Onto: onto}
	good := &rewrite.CQ{
		Atoms:  []rewrite.Atom{classAtom("Wellbore", "x"), dataAtom("name", "x", "n")},
		Answer: []string{"x", "n"},
	}
	if err := v.CheckCQ("test", good); err != nil {
		t.Fatalf("well-formed CQ rejected: %v", err)
	}
	cases := []struct {
		check string
		cq    *rewrite.CQ
	}{
		{"cq-empty", &rewrite.CQ{Answer: []string{"x"}}},
		{"atom-pred", &rewrite.CQ{Atoms: []rewrite.Atom{{Kind: rewrite.ClassAtom, S: rewrite.Term{Var: "x"}}}}},
		{"certain-var", &rewrite.CQ{Atoms: []rewrite.Atom{classAtom("Wellbore", "x")}, Answer: []string{"y"}}},
		{"atom-kind", &rewrite.CQ{Atoms: []rewrite.Atom{classAtom("drilledBy", "x")}, Answer: []string{"x"}}},
		{"atom-kind", &rewrite.CQ{
			Atoms:  []rewrite.Atom{objAtom("name", "x", "y")},
			Answer: []string{"x"},
		}},
		{"atom-class-object", &rewrite.CQ{
			Atoms:  []rewrite.Atom{{Kind: rewrite.ClassAtom, Pred: ns + "Wellbore", S: rewrite.Term{Var: "x"}, O: rewrite.Term{Var: "y"}}},
			Answer: []string{"x"},
		}},
	}
	for _, tc := range cases {
		err := v.CheckCQ("test", tc.cq)
		if err == nil {
			t.Fatalf("%s: expected violation", tc.check)
		}
		viol, ok := err.(*Violation)
		if !ok || viol.Check != tc.check {
			t.Fatalf("want check %q, got %v", tc.check, err)
		}
		if viol.Stage != "test" {
			t.Fatalf("stage not propagated: %v", viol)
		}
	}
}

func TestCheckUCQAnswerPreservation(t *testing.T) {
	v := &Verifier{}
	a := &rewrite.CQ{Atoms: []rewrite.Atom{classAtom("Wellbore", "x")}, Answer: []string{"x"}}
	b := &rewrite.CQ{Atoms: []rewrite.Atom{classAtom("Company", "y")}, Answer: []string{"y"}}
	err := v.CheckUCQ("test", rewrite.UCQ{a, b}, []string{"x"})
	if err == nil {
		t.Fatal("expected answer-preserved violation")
	}
	if viol := err.(*Violation); viol.Check != "answer-preserved" {
		t.Fatalf("got %v", err)
	}
	if err := v.CheckUCQ("test", rewrite.UCQ{a}, []string{"x"}); err != nil {
		t.Fatalf("preserved answer rejected: %v", err)
	}
	if err := v.CheckUCQ("test", rewrite.UCQ{}, []string{"x"}); err == nil {
		t.Fatal("expected ucq-empty violation")
	}
}

// sqlFixture builds a catalog plus a well-formed single-arm statement in
// the unfolder's output shape.
func sqlFixture(t *testing.T) (*sqldb.Database, *analyze.Constraints, *sqldb.SelectStmt) {
	t.Helper()
	db := sqldb.NewDatabase("fixture")
	if _, err := db.CreateTable(&sqldb.TableDef{
		Name: "wellbore",
		Columns: []sqldb.Column{
			{Name: "id", Type: sqldb.TInt, NotNull: true},
			{Name: "name", Type: sqldb.TText},
			{Name: "year", Type: sqldb.TInt},
		},
		PrimaryKey: []int{0},
	}); err != nil {
		t.Fatal(err)
	}
	stmt, err := sqldb.Parse(`SELECT 'w' || t1.id AS v_x, 0 AS v_x_t, '' AS v_x_dt,
		t1.name AS v_n, 2 AS v_n_t, '' AS v_n_dt
		FROM wellbore t1 WHERE t1.id IS NOT NULL AND t1.name IS NOT NULL`)
	if err != nil {
		t.Fatal(err)
	}
	return db, nil, stmt
}

func TestCheckSQLAcceptsWellFormed(t *testing.T) {
	db, cons, stmt := sqlFixture(t)
	v := &Verifier{DB: db, Cons: cons}
	if err := v.CheckSQL("test", stmt, []string{"x", "n"}); err != nil {
		t.Fatalf("well-formed statement rejected: %v", err)
	}
}

func TestCheckSQLViolations(t *testing.T) {
	db, cons, _ := sqlFixture(t)
	v := &Verifier{DB: db, Cons: cons}
	parse := func(sql string) *sqldb.SelectStmt {
		t.Helper()
		stmt, err := sqldb.Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		return stmt
	}
	cases := []struct {
		check string
		vars  []string
		sql   string
	}{
		{"projection-shape", []string{"x"},
			`SELECT t1.id AS v_x FROM wellbore t1`},
		{"projection-shape", []string{"x"},
			`SELECT t1.id AS v_x, 0 AS wrong, '' AS v_x_dt FROM wellbore t1`},
		{"table-exists", []string{"x"},
			`SELECT t1.id AS v_x, 0 AS v_x_t, '' AS v_x_dt FROM nosuch t1 WHERE t1.id IS NOT NULL`},
		{"alias-resolves", []string{"x"},
			`SELECT t9.id AS v_x, 0 AS v_x_t, '' AS v_x_dt FROM wellbore t1 WHERE t1.id IS NOT NULL`},
		{"column-exists", []string{"x"},
			`SELECT t1.nocol AS v_x, 0 AS v_x_t, '' AS v_x_dt FROM wellbore t1 WHERE t1.nocol IS NOT NULL`},
		{"alias-unique", []string{"x"},
			`SELECT t1.id AS v_x, 0 AS v_x_t, '' AS v_x_dt FROM wellbore t1, wellbore t1 WHERE t1.id IS NOT NULL`},
		{"comparison-types", []string{"x"},
			`SELECT t1.id AS v_x, 0 AS v_x_t, '' AS v_x_dt FROM wellbore t1 WHERE t1.id IS NOT NULL AND t1.year < 'abc'`},
		{"notnull-guard", []string{"x"},
			`SELECT t1.name AS v_x, 2 AS v_x_t, '' AS v_x_dt FROM wellbore t1`},
	}
	for _, tc := range cases {
		err := v.CheckSQL("test", parse(tc.sql), tc.vars)
		if err == nil {
			t.Fatalf("%s: expected violation for %s", tc.check, tc.sql)
		}
		viol, ok := err.(*Violation)
		if !ok || viol.Check != tc.check {
			t.Fatalf("want check %q, got %v", tc.check, err)
		}
	}
}

func TestCheckSQLGuardElisionNeedsConstraints(t *testing.T) {
	db, _, _ := sqlFixture(t)
	// t1.id is NOT NULL in the catalog; the guard may be elided only when
	// the constraints artifact is present to prove it.
	stmt, err := sqldb.Parse(`SELECT t1.id AS v_x, 0 AS v_x_t, '' AS v_x_dt FROM wellbore t1`)
	if err != nil {
		t.Fatal(err)
	}
	noCons := &Verifier{DB: db}
	if err := noCons.CheckSQL("test", stmt, []string{"x"}); err == nil {
		t.Fatal("guard elision accepted without a constraints artifact")
	}
	withCons := &Verifier{DB: db, Cons: analyze.DeriveConstraints(&r2rml.Mapping{}, owl.New(ns+"o2"), db)}
	if err := withCons.CheckSQL("test", stmt, []string{"x"}); err != nil {
		t.Fatalf("catalog-proven elision rejected: %v", err)
	}
}

func TestCheckSQLSeesThroughDerivedTables(t *testing.T) {
	db, _, _ := sqlFixture(t)
	v := &Verifier{DB: db, Cons: analyze.DeriveConstraints(&r2rml.Mapping{}, owl.New(ns+"o2"), db)}
	// The derived table projects plain columns of a single base table, so
	// the catalog NOT NULL proof for id flows through the view.
	stmt, err := sqldb.Parse(`SELECT t1.id AS v_x, 0 AS v_x_t, '' AS v_x_dt
		FROM (SELECT id, name FROM wellbore) t1`)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.CheckSQL("test", stmt, []string{"x"}); err != nil {
		t.Fatalf("transparent view rejected: %v", err)
	}
	// A column absent from the view must still be caught.
	bad, err := sqldb.Parse(`SELECT t1.year AS v_x, 0 AS v_x_t, '' AS v_x_dt
		FROM (SELECT id, name FROM wellbore) t1 WHERE t1.year IS NOT NULL`)
	if err != nil {
		t.Fatal(err)
	}
	errBad := v.CheckSQL("test", bad, []string{"x"})
	if errBad == nil {
		t.Fatal("expected column-exists violation through the view")
	}
	if viol := errBad.(*Violation); viol.Check != "column-exists" {
		t.Fatalf("got %v", errBad)
	}
}
