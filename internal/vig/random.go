package vig

import (
	"fmt"
	"math/rand"

	"npdbench/internal/sqldb"
)

// RandomGenerator is the purely random baseline of the paper's Table 8:
// it respects hard database constraints (types, primary keys, foreign
// keys — without them the data would not even load) but ignores every
// statistic of the analysis phase: no duplicate ratios, no domain
// intervals, no constant-vocabulary detection.
type RandomGenerator struct {
	rng *rand.Rand
}

// NewRandom creates a deterministic random baseline generator.
func NewRandom(seed int64) *RandomGenerator {
	return &RandomGenerator{rng: rand.New(rand.NewSource(seed))}
}

// Generate inserts ~growth·|T| uniformly random tuples into each table.
func (g *RandomGenerator) Generate(db *sqldb.Database, growth float64) (*Report, error) {
	if growth < 0 {
		return nil, fmt.Errorf("vig: negative growth factor %g", growth)
	}
	// FK ordering is still required for loadability.
	order, _ := topoOrder(db)
	rep := &Report{Inserted: make(map[string]int), Skipped: make(map[string]int)}
	baseCounts := make(map[string]int)
	for _, t := range db.Tables() {
		baseCounts[t.Def.Name] = t.Len()
	}
	for _, name := range order {
		t := db.Table(name)
		if t == nil {
			continue
		}
		target := int(growth * float64(baseCounts[t.Def.Name]))
		ins, skip := g.pump(db, t, target)
		rep.Inserted[t.Def.Name] = ins
		rep.Skipped[t.Def.Name] = skip
	}
	return rep, nil
}

func (g *RandomGenerator) pump(db *sqldb.Database, t *sqldb.Table, target int) (inserted, skipped int) {
	def := t.Def
	fkCols := map[int]bool{}
	for _, fk := range def.ForeignKeys {
		for _, c := range fk.Columns {
			fkCols[c] = true
		}
	}
	for n := 0; n < target; n++ {
		ok := false
		for attempt := 0; attempt < rowRetries; attempt++ {
			row := make(sqldb.Row, len(def.Columns))
			valid := true
			for _, fk := range def.ForeignKeys {
				parent := db.Table(fk.RefTable)
				if parent == nil || parent.Len() == 0 {
					valid = false
					break
				}
				src := parent.Rows[g.rng.Intn(parent.Len())]
				for i, c := range fk.Columns {
					row[c] = src[fk.RefColumns[i]]
				}
			}
			if !valid {
				break
			}
			for i, col := range def.Columns {
				if fkCols[i] {
					continue
				}
				row[i] = g.randomValue(col)
			}
			if err := db.InsertUnchecked(def.Name, row); err == nil {
				ok = true
				break
			}
		}
		if ok {
			inserted++
		} else {
			skipped++
		}
	}
	return inserted, skipped
}

func (g *RandomGenerator) randomValue(col sqldb.Column) sqldb.Value {
	switch col.Type {
	case sqldb.TInt:
		return sqldb.NewInt(g.rng.Int63n(1 << 40))
	case sqldb.TFloat:
		return sqldb.NewFloat(g.rng.Float64() * 1e9)
	case sqldb.TDate:
		return sqldb.NewDate(g.rng.Int63n(40000)) // anywhere in 1970–2079
	case sqldb.TBool:
		return sqldb.NewBool(g.rng.Intn(2) == 0)
	case sqldb.TGeometry:
		x0 := g.rng.Float64() * 1e6
		y0 := g.rng.Float64() * 1e6
		x1 := x0 + g.rng.Float64()*1e5 + 1
		y1 := y0 + g.rng.Float64()*1e5 + 1
		return sqldb.NewGeometry(&sqldb.Geometry{Points: []sqldb.Point{
			{X: x0, Y: y0}, {X: x1, Y: y0}, {X: x1, Y: y1}, {X: x0, Y: y1}, {X: x0, Y: y0},
		}})
	default:
		return sqldb.NewString(fmt.Sprintf("rnd%x", g.rng.Int63()))
	}
}
