// Package vig implements the Virtual Instance Generator of the NPD
// benchmark (paper Sect. 5.1): a data-scaling tool that pumps a relational
// database by a tunable growth factor while preserving the statistics that
// shape the virtual RDF instance exposed through OBDA mappings.
//
// The generator runs in two phases, mirroring the paper:
//
//   - analysis: per-column duplicate ratios (measure D), value intervals of
//     ordered domains, geometry bounding boxes, NULL ratios, and the
//     foreign-key graph with its cycles;
//   - generation: per table T, ~g·|T| fresh tuples whose columns reproduce
//     the measured duplicate ratios (duplicates drawn uniformly from the
//     existing values) and whose fresh values stay inside the measured
//     intervals, with primary keys kept unique, foreign keys kept valid,
//     and FK cycles cut by NULLs or duplicates.
//
// A purely random generator with the same constraint handling is included
// as the baseline of the paper's Table 8 comparison.
package vig

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"npdbench/internal/sqldb"
)

// ColumnProfile is the analysis result for one column.
type ColumnProfile struct {
	Name string
	Type sqldb.ColType
	// DuplicateRatio is (|T.C| − |distinct T.C|)/|T.C| (paper measure D).
	DuplicateRatio float64
	// NullRatio is the fraction of NULLs.
	NullRatio float64
	// Distinct holds the distinct non-NULL values (the duplicate pool).
	// Capped at poolCap values, sampled deterministically.
	Distinct []sqldb.Value
	// Min/Max bound ordered domains (zero Values otherwise).
	Min, Max sqldb.Value
	// Geometry bounding box (valid when Type == TGeometry and HasGeo).
	HasGeo           bool
	GeoMinX, GeoMinY float64
	GeoMaxX, GeoMaxY float64
	// IntrinsicallyConstant marks columns whose content does not scale
	// with database size (duplicate ratio above the constancy threshold);
	// the generator never invents fresh values for them, which keeps
	// concepts like the paper's :ProductSize from growing.
	IntrinsicallyConstant bool
}

// TableProfile is the analysis result for one table.
type TableProfile struct {
	Name     string
	RowCount int
	Columns  []ColumnProfile
}

// Analysis is the full analysis-phase output.
type Analysis struct {
	Tables map[string]*TableProfile
	// Order lists table names parents-first (FK-topological; cycles broken
	// arbitrarily but deterministically).
	Order []string
	// CyclicTables marks tables involved in FK cycles; insertions into
	// them cut the chase by NULL or duplicate FK values (paper: "length of
	// chase cycles").
	CyclicTables map[string]bool
}

const (
	poolCap = 4096
	// constancyThreshold: a duplicate ratio at or above this marks a column
	// as intrinsically constant (its distinct values are a fixed small
	// vocabulary, e.g. product sizes or status codes).
	constancyThreshold = 0.9
)

// Analyze runs the analysis phase over the database.
func Analyze(db *sqldb.Database) (*Analysis, error) {
	a := &Analysis{Tables: make(map[string]*TableProfile), CyclicTables: make(map[string]bool)}
	for _, t := range db.Tables() {
		tp, err := analyzeTable(t)
		if err != nil {
			return nil, err
		}
		a.Tables[strings.ToLower(t.Def.Name)] = tp
	}
	a.Order, a.CyclicTables = topoOrder(db)
	return a, nil
}

func analyzeTable(t *sqldb.Table) (*TableProfile, error) {
	st := t.Stats()
	tp := &TableProfile{Name: t.Def.Name, RowCount: st.RowCount}
	for i, col := range t.Def.Columns {
		cp := ColumnProfile{
			Name:           col.Name,
			Type:           col.Type,
			DuplicateRatio: st.DuplicateRatio(i),
			Min:            st.Min[i],
			Max:            st.Max[i],
		}
		if st.RowCount > 0 {
			cp.NullRatio = float64(st.NullCount[i]) / float64(st.RowCount)
		}
		cp.IntrinsicallyConstant = st.RowCount >= 4 && cp.DuplicateRatio >= constancyThreshold
		// distinct pool (deterministic order: first occurrence)
		seen := make(map[string]bool)
		minX, minY := math.Inf(1), math.Inf(1)
		maxX, maxY := math.Inf(-1), math.Inf(-1)
		for _, row := range t.Rows {
			v := row[i]
			if v.IsNull() {
				continue
			}
			if col.Type == sqldb.TGeometry && v.G != nil {
				x0, y0, x1, y1 := v.G.BoundingBox()
				minX, minY = math.Min(minX, x0), math.Min(minY, y0)
				maxX, maxY = math.Max(maxX, x1), math.Max(maxY, y1)
				cp.HasGeo = true
			}
			k := v.Key()
			if seen[k] || len(cp.Distinct) >= poolCap {
				continue
			}
			seen[k] = true
			cp.Distinct = append(cp.Distinct, v)
		}
		if cp.HasGeo {
			cp.GeoMinX, cp.GeoMinY, cp.GeoMaxX, cp.GeoMaxY = minX, minY, maxX, maxY
		}
		tp.Columns = append(tp.Columns, cp)
	}
	return tp, nil
}

// topoOrder orders tables parents-first along foreign keys and reports the
// tables on FK cycles.
func topoOrder(db *sqldb.Database) ([]string, map[string]bool) {
	graph := db.FKGraph() // table -> referenced parents
	names := make([]string, 0, len(graph))
	for n := range graph {
		names = append(names, n)
	}
	sort.Strings(names)

	cyclic := make(map[string]bool)
	// Tarjan-free cycle detection: a table is cyclic when it can reach
	// itself through FK edges.
	for _, n := range names {
		seen := map[string]bool{}
		stack := append([]string{}, graph[n]...)
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if cur == n {
				cyclic[n] = true
				break
			}
			if seen[cur] {
				continue
			}
			seen[cur] = true
			stack = append(stack, graph[cur]...)
		}
	}

	// Kahn's algorithm over the acyclic part; cyclic tables appended in
	// name order at positions after their acyclic parents.
	indeg := map[string]int{}
	children := map[string][]string{}
	for _, n := range names {
		indeg[n] = 0
	}
	for _, n := range names {
		for _, parent := range graph[n] {
			if parent == n || cyclic[n] && cyclic[parent] {
				continue // cycle edges ignored for ordering
			}
			indeg[n]++
			children[parent] = append(children[parent], n)
		}
	}
	var order []string
	var queue []string
	for _, n := range names {
		if indeg[n] == 0 {
			queue = append(queue, n)
		}
	}
	sort.Strings(queue)
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		next := children[n]
		sort.Strings(next)
		for _, c := range next {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
		sort.Strings(queue)
	}
	if len(order) < len(names) {
		// leftover (cycles): deterministic append
		in := map[string]bool{}
		for _, n := range order {
			in[n] = true
		}
		for _, n := range names {
			if !in[n] {
				order = append(order, n)
			}
		}
	}
	return order, cyclic
}

// Summary renders a human-readable analysis report (cmd/vigstat).
func (a *Analysis) Summary() string {
	var sb strings.Builder
	names := make([]string, 0, len(a.Tables))
	for n := range a.Tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		tp := a.Tables[n]
		fmt.Fprintf(&sb, "%s (%d rows%s)\n", tp.Name, tp.RowCount, cycleMark(a.CyclicTables[n]))
		for _, c := range tp.Columns {
			fmt.Fprintf(&sb, "  %-24s %-8s dup=%.3f null=%.3f distinct=%d",
				c.Name, c.Type, c.DuplicateRatio, c.NullRatio, len(c.Distinct))
			if !c.Min.IsNull() {
				fmt.Fprintf(&sb, " range=[%s, %s]", c.Min, c.Max)
			}
			if c.HasGeo {
				fmt.Fprintf(&sb, " bbox=[%g %g %g %g]", c.GeoMinX, c.GeoMinY, c.GeoMaxX, c.GeoMaxY)
			}
			if c.IntrinsicallyConstant {
				sb.WriteString(" CONSTANT")
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

func cycleMark(b bool) string {
	if b {
		return ", on FK cycle"
	}
	return ""
}
