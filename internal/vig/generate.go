package vig

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"npdbench/internal/sqldb"
)

// Generator produces scaled database instances from an analysis.
type Generator struct {
	analysis *Analysis
	rng      *rand.Rand
	freshSeq map[string]int64 // per table.column fresh-value counter
}

// New creates a deterministic generator (same seed → same data).
func New(a *Analysis, seed int64) *Generator {
	return &Generator{
		analysis: a,
		rng:      rand.New(rand.NewSource(seed)),
		freshSeq: make(map[string]int64),
	}
}

// Report summarizes a generation run.
type Report struct {
	Inserted map[string]int
	// Skipped counts rows abandoned after repeated key conflicts; the
	// resulting size is approximate, as the paper states ("the size is
	// approximated").
	Skipped map[string]int
}

// TotalInserted sums inserted rows over all tables.
func (r *Report) TotalInserted() int {
	n := 0
	for _, v := range r.Inserted {
		n += v
	}
	return n
}

const rowRetries = 32

// Generate inserts ~growth·|T| tuples into every table of db, walking
// tables parents-first so that foreign keys can always reference existing
// rows. growth is the paper's g: a database NPDk corresponds to
// Generate(db, k-1) applied to the original instance.
func (g *Generator) Generate(db *sqldb.Database, growth float64) (*Report, error) {
	if growth < 0 {
		return nil, fmt.Errorf("vig: negative growth factor %g", growth)
	}
	rep := &Report{Inserted: make(map[string]int), Skipped: make(map[string]int)}
	for _, name := range g.analysis.Order {
		tp := g.analysis.Tables[name]
		if tp == nil {
			continue
		}
		t := db.Table(name)
		if t == nil {
			return nil, fmt.Errorf("vig: table %s missing from target database", name)
		}
		target := int(math.Round(growth * float64(tp.RowCount)))
		inserted, skipped, err := g.pumpTable(db, t, tp, target)
		if err != nil {
			return nil, err
		}
		rep.Inserted[tp.Name] = inserted
		rep.Skipped[tp.Name] = skipped
	}
	return rep, nil
}

func (g *Generator) pumpTable(db *sqldb.Database, t *sqldb.Table, tp *TableProfile, target int) (inserted, skipped int, err error) {
	if target <= 0 || tp.RowCount == 0 {
		return 0, 0, nil
	}
	def := t.Def
	cyclic := g.analysis.CyclicTables[strings.ToLower(def.Name)]
	// Columns covered by foreign keys are assigned from parent rows.
	fkCols := map[int]bool{}
	for _, fk := range def.ForeignKeys {
		for _, c := range fk.Columns {
			fkCols[c] = true
		}
	}
	for n := 0; n < target; n++ {
		ok := false
		for attempt := 0; attempt < rowRetries; attempt++ {
			row := make(sqldb.Row, len(def.Columns))
			if err := g.assignForeignKeys(db, def, row, cyclic); err != nil {
				return inserted, skipped, err
			}
			for i := range def.Columns {
				if fkCols[i] && !row[i].IsNull() {
					continue // set by FK assignment
				}
				if fkCols[i] {
					continue // FK deliberately NULL (cycle cut)
				}
				row[i] = g.columnValue(def.Name, def.Columns[i], &tp.Columns[i], attempt)
			}
			insErr := db.InsertUnchecked(def.Name, row)
			if insErr == nil {
				ok = true
				break
			}
			if _, dup := insErr.(*sqldb.DuplicateKeyError); dup {
				continue // retry with fresh values
			}
			return inserted, skipped, insErr
		}
		if ok {
			inserted++
		} else {
			skipped++
		}
	}
	return inserted, skipped, nil
}

// assignForeignKeys fills FK columns from randomly chosen parent rows,
// keeping composite keys consistent. On FK cycles the chase is cut: the
// reference is NULLed when allowed, otherwise it reuses an existing parent
// key (a duplicate), exactly the two cuts the paper describes.
func (g *Generator) assignForeignKeys(db *sqldb.Database, def *sqldb.TableDef, row sqldb.Row, cyclic bool) error {
	for _, fk := range def.ForeignKeys {
		parent := db.Table(fk.RefTable)
		if parent == nil {
			return fmt.Errorf("vig: %s references missing table %s", def.Name, fk.RefTable)
		}
		if parent.Len() == 0 {
			// no parent rows: NULL if allowed, else fail the row later
			continue
		}
		if cyclic && g.fkNullable(def, fk) && g.rng.Float64() < 0.5 {
			// cycle cut by NULL
			for _, c := range fk.Columns {
				row[c] = sqldb.Null
			}
			continue
		}
		src := parent.Rows[g.rng.Intn(parent.Len())]
		for i, c := range fk.Columns {
			row[c] = src[fk.RefColumns[i]]
		}
	}
	return nil
}

func (g *Generator) fkNullable(def *sqldb.TableDef, fk sqldb.ForeignKey) bool {
	for _, c := range fk.Columns {
		if def.Columns[c].NotNull {
			return false
		}
		for _, pk := range def.PrimaryKey {
			if pk == c {
				return false
			}
		}
	}
	return true
}

// columnValue draws one value for a non-FK column, honouring the analyzed
// duplicate/NULL ratios; later retry attempts bias toward fresh values so
// key conflicts resolve.
func (g *Generator) columnValue(table string, col sqldb.Column, cp *ColumnProfile, attempt int) sqldb.Value {
	if !col.NotNull && cp.NullRatio > 0 && g.rng.Float64() < cp.NullRatio {
		return sqldb.Null
	}
	dupP := cp.DuplicateRatio
	if cp.IntrinsicallyConstant {
		dupP = 1 // never invent new values for constant vocabularies
	}
	if attempt > 0 && !cp.IntrinsicallyConstant {
		dupP = 0 // retries need fresh values to escape key conflicts
	}
	if len(cp.Distinct) > 0 && g.rng.Float64() < dupP {
		return cp.Distinct[g.rng.Intn(len(cp.Distinct))]
	}
	return g.freshValue(table, col, cp)
}

// freshValue draws a new value from (or adjacent to) the analyzed domain
// interval, per the paper's Fresh Values Generation rule.
func (g *Generator) freshValue(table string, col sqldb.Column, cp *ColumnProfile) sqldb.Value {
	key := table + "." + col.Name
	g.freshSeq[key]++
	seq := g.freshSeq[key]
	switch col.Type {
	case sqldb.TInt:
		lo, hi := int64(0), int64(1)
		if !cp.Min.IsNull() {
			lo, hi = cp.Min.I, cp.Max.I
		}
		span := hi - lo + 1
		if span > 1 && seq <= span {
			// draw inside the interval first
			return sqldb.NewInt(lo + g.rng.Int63n(span))
		}
		// interval exhausted: values adjacent to it
		return sqldb.NewInt(hi + seq)
	case sqldb.TFloat:
		lo, hi := 0.0, 1.0
		if !cp.Min.IsNull() {
			lo, _ = cp.Min.AsFloat()
			hi, _ = cp.Max.AsFloat()
		}
		if hi <= lo {
			hi = lo + 1
		}
		return sqldb.NewFloat(lo + g.rng.Float64()*(hi-lo))
	case sqldb.TDate:
		lo, hi := int64(0), int64(365)
		if !cp.Min.IsNull() {
			lo, hi = cp.Min.I, cp.Max.I
		}
		if hi <= lo {
			hi = lo + 365
		}
		return sqldb.NewDate(lo + g.rng.Int63n(hi-lo+1))
	case sqldb.TBool:
		return sqldb.NewBool(g.rng.Intn(2) == 0)
	case sqldb.TGeometry:
		return sqldb.NewGeometry(g.freshPolygon(cp))
	default: // TText
		prefix := ""
		if len(cp.Distinct) > 0 {
			sample := cp.Distinct[0].String()
			if i := strings.IndexAny(sample, "0123456789"); i > 0 {
				prefix = sample[:i]
			}
		}
		return sqldb.NewString(fmt.Sprintf("%s%s_g%d", prefix, col.Name, seq))
	}
}

// freshPolygon builds a valid rectangle inside the analyzed bounding box,
// implementing the paper's rule that generated geometric values fall in
// the region of the existing ones (so selection queries still hit them).
func (g *Generator) freshPolygon(cp *ColumnProfile) *sqldb.Geometry {
	minX, minY, maxX, maxY := cp.GeoMinX, cp.GeoMinY, cp.GeoMaxX, cp.GeoMaxY
	if !cp.HasGeo || maxX <= minX || maxY <= minY {
		minX, minY, maxX, maxY = 0, 0, 100, 100
	}
	w := maxX - minX
	h := maxY - minY
	x0 := minX + g.rng.Float64()*w*0.8
	y0 := minY + g.rng.Float64()*h*0.8
	x1 := x0 + g.rng.Float64()*(maxX-x0)
	y1 := y0 + g.rng.Float64()*(maxY-y0)
	if x1 <= x0 {
		x1 = x0 + w*0.01 + 1e-9
	}
	if y1 <= y0 {
		y1 = y0 + h*0.01 + 1e-9
	}
	return &sqldb.Geometry{Points: []sqldb.Point{
		{X: x0, Y: y0}, {X: x1, Y: y0}, {X: x1, Y: y1}, {X: x0, Y: y1}, {X: x0, Y: y0},
	}}
}
