package vig

import (
	"testing"

	"npdbench/internal/r2rml"
	"npdbench/internal/sqldb"
)

// newSeedDB builds a small database exercising every generator concern:
// constant vocab columns, linear id columns, FKs, a composite PK, a
// self-referencing FK cycle, dates, floats and geometry.
func newSeedDB(t testing.TB) *sqldb.Database {
	t.Helper()
	db := sqldb.NewDatabase("vigtest")
	mustCreate := func(def *sqldb.TableDef) {
		t.Helper()
		if _, err := db.CreateTable(def); err != nil {
			t.Fatal(err)
		}
	}
	mustCreate(&sqldb.TableDef{
		Name: "parent",
		Columns: []sqldb.Column{
			{Name: "id", Type: sqldb.TInt, NotNull: true},
			{Name: "kind", Type: sqldb.TText},
			{Name: "score", Type: sqldb.TFloat},
			{Name: "born", Type: sqldb.TDate},
			{Name: "area", Type: sqldb.TGeometry},
		},
		PrimaryKey: []int{0},
	})
	mustCreate(&sqldb.TableDef{
		Name: "child",
		Columns: []sqldb.Column{
			{Name: "pid", Type: sqldb.TInt, NotNull: true},
			{Name: "seq", Type: sqldb.TInt, NotNull: true},
			{Name: "note", Type: sqldb.TText},
		},
		PrimaryKey:  []int{0, 1},
		ForeignKeys: []sqldb.ForeignKey{{Columns: []int{0}, RefTable: "parent", RefColumns: []int{0}}},
	})
	mustCreate(&sqldb.TableDef{
		Name: "node",
		Columns: []sqldb.Column{
			{Name: "id", Type: sqldb.TInt, NotNull: true},
			{Name: "up", Type: sqldb.TInt},
		},
		PrimaryKey:  []int{0},
		ForeignKeys: []sqldb.ForeignKey{{Columns: []int{1}, RefTable: "node", RefColumns: []int{0}}},
	})
	kinds := []string{"A", "B"} // constant vocabulary
	for i := 0; i < 40; i++ {
		poly := &sqldb.Geometry{Points: []sqldb.Point{
			{X: float64(i), Y: 0}, {X: float64(i) + 1, Y: 0},
			{X: float64(i) + 1, Y: 1}, {X: float64(i), Y: 1}, {X: float64(i), Y: 0},
		}}
		if err := db.Insert("parent", sqldb.Row{
			sqldb.NewInt(int64(i)),
			sqldb.NewString(kinds[i%2]),
			sqldb.NewFloat(float64(i) * 1.5),
			sqldb.NewDate(int64(10000 + i*10)),
			sqldb.NewGeometry(poly),
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		for s := 0; s < 2; s++ {
			if err := db.Insert("child", sqldb.Row{
				sqldb.NewInt(int64(i)), sqldb.NewInt(int64(s)),
				sqldb.NewString("n"),
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 10; i++ {
		up := sqldb.Null
		if i > 0 {
			up = sqldb.NewInt(int64(i - 1))
		}
		if err := db.Insert("node", sqldb.Row{sqldb.NewInt(int64(i)), up}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestAnalyzeMeasures(t *testing.T) {
	db := newSeedDB(t)
	a, err := Analyze(db)
	if err != nil {
		t.Fatal(err)
	}
	parent := a.Tables["parent"]
	if parent == nil || parent.RowCount != 40 {
		t.Fatalf("parent profile %+v", parent)
	}
	// kind: 40 values, 2 distinct -> duplicate ratio 0.95, constant
	kind := parent.Columns[1]
	if kind.DuplicateRatio < 0.94 || !kind.IntrinsicallyConstant {
		t.Fatalf("kind profile %+v", kind)
	}
	// id: all distinct
	if parent.Columns[0].DuplicateRatio != 0 || parent.Columns[0].IntrinsicallyConstant {
		t.Fatalf("id profile %+v", parent.Columns[0])
	}
	// geometry bounding box covers all polygons
	area := parent.Columns[4]
	if !area.HasGeo || area.GeoMinX != 0 || area.GeoMaxX != 40 {
		t.Fatalf("geo bbox %+v", area)
	}
	// node is on an FK cycle
	if !a.CyclicTables["node"] {
		t.Fatal("self-FK table must be flagged cyclic")
	}
	// parents must precede children in generation order
	pos := map[string]int{}
	for i, n := range a.Order {
		pos[n] = i
	}
	if pos["parent"] > pos["child"] {
		t.Fatalf("order %v", a.Order)
	}
}

func TestGenerateGrowsAndStaysValid(t *testing.T) {
	db := newSeedDB(t)
	a, err := Analyze(db)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := New(a, 1).Generate(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalInserted() == 0 {
		t.Fatal("nothing inserted")
	}
	// ~3x rows per table (approximate, per the paper)
	p := db.Table("parent").Len()
	if p < 100 || p > 130 {
		t.Fatalf("parent rows = %d, want ≈120", p)
	}
	if errs := db.CheckIntegrity(); len(errs) != 0 {
		t.Fatalf("integrity: %v", errs[0])
	}
}

func TestGenerateKeepsConstantVocabulary(t *testing.T) {
	db := newSeedDB(t)
	a, err := Analyze(db)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(a, 1).Generate(db, 5); err != nil {
		t.Fatal(err)
	}
	st := db.Table("parent").Stats()
	// kind column must still hold only A and B
	if st.DistinctCount[1] != 2 {
		t.Fatalf("constant vocabulary grew: %d distinct", st.DistinctCount[1])
	}
}

func TestGenerateGeometryInsideBBox(t *testing.T) {
	db := newSeedDB(t)
	a, err := Analyze(db)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(a, 1).Generate(db, 1); err != nil {
		t.Fatal(err)
	}
	for _, row := range db.Table("parent").Rows {
		g := row[4].G
		if g == nil {
			continue
		}
		if !g.Valid() {
			t.Fatal("generated polygon invalid")
		}
		minX, _, maxX, _ := g.BoundingBox()
		if minX < -0.001 || maxX > 40.001 {
			t.Fatalf("polygon outside analyzed bbox: [%g, %g]", minX, maxX)
		}
	}
}

func TestGenerateDeterminism(t *testing.T) {
	run := func() string {
		db := newSeedDB(t)
		a, err := Analyze(db)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := New(a, 7).Generate(db, 1); err != nil {
			t.Fatal(err)
		}
		return db.Summary()
	}
	if run() != run() {
		t.Fatal("generation must be deterministic for a fixed seed")
	}
}

func TestGenerateZeroGrowth(t *testing.T) {
	db := newSeedDB(t)
	before := db.TotalRows()
	a, err := Analyze(db)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := New(a, 1).Generate(db, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalInserted() != 0 || db.TotalRows() != before {
		t.Fatal("growth 0 must not insert")
	}
	if _, err := New(a, 1).Generate(db, -1); err == nil {
		t.Fatal("negative growth must error")
	}
}

func TestRandomGeneratorValidButIgnorantOfStats(t *testing.T) {
	db := newSeedDB(t)
	if _, err := NewRandom(1).Generate(db, 2); err != nil {
		t.Fatal(err)
	}
	if errs := db.CheckIntegrity(); len(errs) != 0 {
		t.Fatalf("random generator must still satisfy FKs: %v", errs[0])
	}
	st := db.Table("parent").Stats()
	// the constant vocabulary is destroyed (random strings)
	if st.DistinctCount[1] <= 3 {
		t.Fatalf("random generator should invent kinds, distinct = %d", st.DistinctCount[1])
	}
}

func TestFKCycleBounded(t *testing.T) {
	db := newSeedDB(t)
	a, err := Analyze(db)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(a, 3).Generate(db, 4); err != nil {
		t.Fatal(err)
	}
	// inserting into the cyclic table terminated and stayed valid
	if errs := db.CheckIntegrity(); len(errs) != 0 {
		t.Fatalf("cycle handling broke integrity: %v", errs[0])
	}
	if db.Table("node").Len() < 30 {
		t.Fatalf("node rows = %d", db.Table("node").Len())
	}
}

func TestVirtualMultiplicityAndIGAs(t *testing.T) {
	db := newSeedDB(t)
	mp := testMappingForMD()
	vmd, err := VirtualMultiplicity(mp, db)
	if err != nil {
		t.Fatal(err)
	}
	hasChild := vmd["http://t/hasChild"]
	// every parent has exactly 2 children
	if hasChild.Mean != 2 || hasChild.P50 != 2 || hasChild.Max != 2 {
		t.Fatalf("hasChild VMD %+v", hasChild)
	}
	pairs, err := AnalyzeIGAs(mp, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	p := pairs[0]
	if !p.IntraTable || p.Table != "child" {
		t.Fatalf("pair %+v", p)
	}
	if p.MD.Mean != 2 {
		t.Fatalf("Intra-MD mean = %g, want 2", p.MD.Mean)
	}
	if p.PairDuplication != 0 {
		t.Fatalf("pair duplication = %g", p.PairDuplication)
	}
}

func TestVMDPreservedByVIG(t *testing.T) {
	db := newSeedDB(t)
	mp := testMappingForMD()
	before, err := VirtualMultiplicity(mp, db)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(db)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(a, 3).Generate(db, 2); err != nil {
		t.Fatal(err)
	}
	after, err := VirtualMultiplicity(mp, db)
	if err != nil {
		t.Fatal(err)
	}
	drift := CompareMultiplicity(before, after)
	// hasChild mean degree should stay near 2 (children FK-sample parents
	// uniformly, both tables grow linearly)
	if d := drift["http://t/hasChild"]; d > 0.5 {
		t.Fatalf("VMD drift %.2f too large", d)
	}
}

// testMappingForMD maps the child table: parent/{pid} hasChild child/{pid}/{seq}.
func testMappingForMD() *r2rml.Mapping {
	return r2rml.MustParseMapping(`
[PrefixDeclaration]
t: http://t/

[MappingDeclaration]
mappingId children
target    t:parent/{pid} t:hasChild t:child/{pid}/{seq} .
source    SELECT pid, seq FROM child
`)
}
