package vig

import (
	"fmt"
	"sort"
	"strings"

	"npdbench/internal/r2rml"
	"npdbench/internal/rdf"
	"npdbench/internal/sqldb"
)

// The measures of the paper's Table 6 that go beyond per-column statistics:
// multiplicity distributions at the virtual level (VMD) and at the
// physical level between individual-generating attributes (Intra-/Inter-MD),
// plus IGA-pair duplication. VIG's generation phase preserves them
// indirectly (via duplicate ratios and FK sampling); this analyzer makes
// them observable so the preservation can be validated.

// Multiplicity summarizes a multiplicity distribution: given a property,
// how many objects a subject connects to.
type Multiplicity struct {
	Subjects int
	// Mean is the average out-degree.
	Mean float64
	// P50/P95 are degree percentiles.
	P50, P95 int
	// Max is the largest out-degree.
	Max int
	// Dist maps out-degree -> number of subjects (capped at degree 16;
	// larger degrees aggregate into Dist[17]).
	Dist map[int]int
}

func (m Multiplicity) String() string {
	return fmt.Sprintf("subjects=%d mean=%.2f p50=%d p95=%d max=%d",
		m.Subjects, m.Mean, m.P50, m.P95, m.Max)
}

// VirtualMultiplicity computes the VMD of every property exposed by the
// mapping over db: the paper's "probability that a node in the domain of p
// connects to k elements through p", reported as a degree histogram.
func VirtualMultiplicity(mp *r2rml.Mapping, db *sqldb.Database) (map[string]Multiplicity, error) {
	type key struct{ s, o rdf.Term }
	edges := make(map[string]map[key]bool)
	err := mp.Materialize(db, func(t rdf.Triple) {
		if t.P.Value == rdf.RDFType {
			return
		}
		m, ok := edges[t.P.Value]
		if !ok {
			m = make(map[key]bool)
			edges[t.P.Value] = m
		}
		m[key{t.S, t.O}] = true
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]Multiplicity, len(edges))
	for prop, set := range edges {
		degree := make(map[rdf.Term]int)
		for k := range set {
			degree[k.s]++
		}
		out[prop] = summarizeDegrees(degree)
	}
	return out, nil
}

func summarizeDegrees(degree map[rdf.Term]int) Multiplicity {
	m := Multiplicity{Subjects: len(degree), Dist: make(map[int]int)}
	if len(degree) == 0 {
		return m
	}
	ds := make([]int, 0, len(degree))
	total := 0
	for _, d := range degree {
		ds = append(ds, d)
		total += d
		bucket := d
		if bucket > 16 {
			bucket = 17
		}
		m.Dist[bucket]++
		if d > m.Max {
			m.Max = d
		}
	}
	sort.Ints(ds)
	m.Mean = float64(total) / float64(len(ds))
	m.P50 = ds[len(ds)/2]
	m.P95 = ds[(len(ds)*95)/100]
	return m
}

// IGAPair identifies two individual-generating attribute sets related by a
// mapping assertion (the subject and object columns of one property map).
type IGAPair struct {
	Property   string
	Table      string // base table when the source is single-table; "" else
	SubjectIGA []string
	ObjectIGA  []string
	// IntraTable is true when both IGAs live in the same logical table
	// (the paper's Intra-MD case); inter-table pairs arise from sources
	// that join.
	IntraTable bool
	// MD is the multiplicity distribution between the IGAs: per distinct
	// subject-tuple, how many distinct object-tuples.
	MD Multiplicity
	// PairDuplication is the ratio of repeated (subject, object) tuples
	// over the source rows (the paper's Intra-/Inter-D measure).
	PairDuplication float64
}

// AnalyzeIGAs computes the Intra-/Inter-table IGA measures of Table 6 for
// every property assertion in the mapping.
func AnalyzeIGAs(mp *r2rml.Mapping, db *sqldb.Database) ([]IGAPair, error) {
	var out []IGAPair
	for _, m := range mp.Maps {
		for _, po := range m.POs {
			subjCols := m.Subject.Columns()
			objCols := po.Object.Columns()
			if len(subjCols) == 0 || len(objCols) == 0 {
				continue
			}
			stmt, err := m.LogicalSQL()
			if err != nil {
				return nil, err
			}
			res, err := db.ExecSelect(stmt)
			if err != nil {
				return nil, fmt.Errorf("vig: IGA analysis of %s: %w", m.Name, err)
			}
			colIdx := make(map[string]int, len(res.Columns))
			for i, c := range res.Columns {
				colIdx[strings.ToLower(c)] = i
			}
			lookup := func(cols []string) ([]int, bool) {
				idx := make([]int, len(cols))
				for i, c := range cols {
					j, ok := colIdx[strings.ToLower(c)]
					if !ok {
						return nil, false
					}
					idx[i] = j
				}
				return idx, true
			}
			sIdx, ok1 := lookup(subjCols)
			oIdx, ok2 := lookup(objCols)
			if !ok1 || !ok2 {
				continue
			}
			pair := IGAPair{
				Property:   po.Predicate,
				SubjectIGA: subjCols,
				ObjectIGA:  objCols,
			}
			if tables := sourceTables(m); len(tables) == 1 {
				pair.Table = tables[0]
				pair.IntraTable = true
			}
			objSets := make(map[string]map[string]bool)
			pairSeen := make(map[string]int)
			rows := 0
			for _, row := range res.Rows {
				if hasNullAtIdx(row, sIdx) || hasNullAtIdx(row, oIdx) {
					continue
				}
				rows++
				sk := sqldb.RowKey(row, sIdx)
				okey := sqldb.RowKey(row, oIdx)
				set, ok := objSets[sk]
				if !ok {
					set = make(map[string]bool)
					objSets[sk] = set
				}
				set[okey] = true
				pairSeen[sk+"\x00"+okey]++
			}
			degree := make(map[rdf.Term]int, len(objSets))
			i := 0
			for _, set := range objSets {
				// synthetic keys; only degrees matter
				degree[rdf.NewBlank(fmt.Sprint(i))] = len(set)
				i++
			}
			pair.MD = summarizeDegrees(degree)
			if rows > 0 {
				dups := 0
				for _, n := range pairSeen {
					dups += n - 1
				}
				pair.PairDuplication = float64(dups) / float64(rows)
			}
			out = append(out, pair)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Property < out[j].Property })
	return out, nil
}

func hasNullAtIdx(row sqldb.Row, idx []int) bool {
	for _, i := range idx {
		if row[i].IsNull() {
			return true
		}
	}
	return false
}

// CompareMultiplicity quantifies how far two VMDs drift: the relative
// change in mean out-degree per property (used to validate that VIG keeps
// VMD roughly invariant while the random generator does not).
func CompareMultiplicity(before, after map[string]Multiplicity) map[string]float64 {
	out := make(map[string]float64)
	for prop, b := range before {
		a, ok := after[prop]
		if !ok || b.Mean == 0 {
			continue
		}
		drift := (a.Mean - b.Mean) / b.Mean
		if drift < 0 {
			drift = -drift
		}
		out[prop] = drift
	}
	return out
}
