package vig

import (
	"fmt"
	"math"
	"strings"

	"npdbench/internal/owl"
	"npdbench/internal/r2rml"
	"npdbench/internal/sqldb"
)

// ElementKind partitions ontology terms for the Table 8 rows.
type ElementKind string

// Element kinds.
const (
	KindClass ElementKind = "class"
	KindObj   ElementKind = "obj"
	KindData  ElementKind = "data"
)

// GrowthRow is one row of the paper's Table 8: the growth quality of one
// element kind under one growth factor for one generator.
type GrowthRow struct {
	Kind      ElementKind
	Growth    float64
	Generator string // "vig" (the paper's "heuristic") or "random"
	Elements  int
	// AvgDeviation is the average |actual−expected|/expected, as a
	// fraction (the paper reports percentages).
	AvgDeviation float64
	// Err50 counts elements deviating by more than 50%.
	Err50 int
}

// Err50Ratio is the relative error column of Table 8.
func (r GrowthRow) Err50Ratio() float64 {
	if r.Elements == 0 {
		return 0
	}
	return float64(r.Err50) / float64(r.Elements)
}

func (r GrowthRow) String() string {
	return fmt.Sprintf("%s_g%g %s: avg dev %.2f%%, err>50%%: %d (%.2f%%) of %d",
		r.Kind, r.Growth, r.Generator, r.AvgDeviation*100, r.Err50, r.Err50Ratio()*100, r.Elements)
}

// GrowthValidator reproduces the paper's Sect. 5.2 validation: it compares
// the virtual-instance growth produced by a generator against the expected
// growth of each ontology element.
type GrowthValidator struct {
	Onto    *owl.Ontology
	Mapping *r2rml.Mapping
	// NewSeed returns a fresh copy of the seed database (each validation
	// run mutates its copy).
	NewSeed func() (*sqldb.Database, error)
}

// expectedConstant decides a priori whether an ontology term's virtual
// extension is intrinsically constant: every source column feeding its
// term maps is a constant vocabulary per the analysis. This mirrors the
// paper's discussion of :ProductSize.
func expectedConstant(term string, mp *r2rml.Mapping, a *Analysis) bool {
	found := false
	for _, m := range mp.Maps {
		var maps []r2rml.TermMap
		for _, c := range m.Classes {
			if c == term {
				maps = append(maps, m.Subject)
			}
		}
		for _, po := range m.POs {
			if po.Predicate == term {
				maps = append(maps, m.Subject, po.Object)
			}
		}
		if len(maps) == 0 {
			continue
		}
		found = true
		tables := sourceTables(m)
		for _, tm := range maps {
			for _, col := range tm.Columns() {
				if !columnConstant(a, tables, col) {
					return false
				}
			}
		}
	}
	return found
}

// sourceTables extracts the base tables of the mapping's logical source.
func sourceTables(m *r2rml.TriplesMap) []string {
	stmt, err := m.LogicalSQL()
	if err != nil {
		return nil
	}
	var out []string
	var walk func(tr sqldb.TableRef)
	walk = func(tr sqldb.TableRef) {
		switch t := tr.(type) {
		case *sqldb.BaseTable:
			out = append(out, strings.ToLower(t.Name))
		case *sqldb.JoinRef:
			walk(t.L)
			walk(t.R)
		case *sqldb.SubqueryTable:
			for _, f := range t.Query.From {
				walk(f)
			}
		}
	}
	for s := stmt; s != nil; s = s.Union {
		for _, f := range s.From {
			walk(f)
		}
	}
	return out
}

func columnConstant(a *Analysis, tables []string, col string) bool {
	for _, tn := range tables {
		tp := a.Tables[tn]
		if tp == nil {
			continue
		}
		for i := range tp.Columns {
			if strings.EqualFold(tp.Columns[i].Name, col) {
				return tp.Columns[i].IntrinsicallyConstant
			}
		}
	}
	return false
}

// GeneratorFunc pumps a database by a growth factor.
type GeneratorFunc func(db *sqldb.Database, growth float64) error

// VIGFunc adapts the heuristic generator for validation runs.
func VIGFunc(seed int64) GeneratorFunc {
	return func(db *sqldb.Database, growth float64) error {
		a, err := Analyze(db)
		if err != nil {
			return err
		}
		_, err = New(a, seed).Generate(db, growth)
		return err
	}
}

// RandomFunc adapts the random baseline for validation runs.
func RandomFunc(seed int64) GeneratorFunc {
	return func(db *sqldb.Database, growth float64) error {
		_, err := NewRandom(seed).Generate(db, growth)
		return err
	}
}

// Run produces the Table 8 rows for one generator across growth factors.
func (v *GrowthValidator) Run(name string, gen GeneratorFunc, growths []float64) ([]GrowthRow, error) {
	seed, err := v.NewSeed()
	if err != nil {
		return nil, err
	}
	base, err := v.Mapping.VirtualCounts(seed)
	if err != nil {
		return nil, err
	}
	analysis, err := Analyze(seed)
	if err != nil {
		return nil, err
	}
	constant := make(map[string]bool)
	for term := range base {
		constant[term] = expectedConstant(term, v.Mapping, analysis)
	}

	var rows []GrowthRow
	for _, g := range growths {
		db, err := v.NewSeed()
		if err != nil {
			return nil, err
		}
		if err := gen(db, g); err != nil {
			return nil, err
		}
		counts, err := v.Mapping.VirtualCounts(db)
		if err != nil {
			return nil, err
		}
		agg := map[ElementKind]*GrowthRow{
			KindClass: {Kind: KindClass, Growth: g, Generator: name},
			KindObj:   {Kind: KindObj, Growth: g, Generator: name},
			KindData:  {Kind: KindData, Growth: g, Generator: name},
		}
		sums := map[ElementKind]float64{}
		for term, n0 := range base {
			if n0 == 0 {
				continue
			}
			expected := float64(n0) * (1 + g)
			if constant[term] {
				expected = float64(n0)
			}
			actual := float64(counts[term])
			dev := math.Abs(actual-expected) / expected
			kind := v.kindOf(term)
			row := agg[kind]
			row.Elements++
			sums[kind] += dev
			if dev > 0.5 {
				row.Err50++
			}
		}
		for _, kind := range []ElementKind{KindClass, KindObj, KindData} {
			row := agg[kind]
			if row.Elements > 0 {
				row.AvgDeviation = sums[kind] / float64(row.Elements)
			}
			rows = append(rows, *row)
		}
	}
	return rows, nil
}

func (v *GrowthValidator) kindOf(term string) ElementKind {
	switch {
	case v.Onto.HasClass(term):
		return KindClass
	case v.Onto.HasDataProperty(term):
		return KindData
	default:
		return KindObj
	}
}
