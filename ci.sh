#!/bin/sh
# ci.sh — the tier-1+ gate. Everything here must pass before merging:
# build, vet, the full test suite under the race detector, and a clean
# obdalint run over the benchmark artifacts (see ROADMAP.md).
set -eux

go build ./...
go vet ./...
go test -race ./...
go run ./cmd/obdalint -strict -quiet
