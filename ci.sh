#!/bin/sh
# ci.sh — the tier-1+ gate. Everything here must pass before merging:
# formatting, build (library and commands), vet, repolint, the full test
# suite under the race detector (which also runs the planck plan verifier
# on every engine query), and a clean obdalint run over the benchmark
# artifacts (see ROADMAP.md).
set -eux

UNFORMATTED=$(gofmt -l cmd internal examples *.go)
if [ -n "$UNFORMATTED" ]; then
    echo "gofmt needed on:" >&2
    echo "$UNFORMATTED" >&2
    exit 1
fi
go build ./...
go build ./cmd/...
go vet ./...
# Typed static analysis in strict mode: any unsuppressed error/warning
# finding fails; every //lint:ignore must be in the documented allowlist
# and must match a diagnostic; the canonical report must equal the
# committed golden; the ranked hot-path allocation work list must equal
# its golden (the list only changes deliberately); and the typed load +
# call graph + summaries + passes must stay inside the wall-time budget.
go run ./cmd/repolint -strict -allow testdata/repolint_allow.txt \
    -golden testdata/repolint.golden -hotgolden testdata/hotreport.golden \
    -budget 20s
go test -race ./...
go run ./cmd/obdalint -strict -quiet

# Instrumented smoke run: one client, one small mix, with the JSONL run log
# on; the validator fails the gate when the log is empty or malformed (and,
# for schema-v2 records, when the per-query usage block is missing).
RUNLOG=$(mktemp)
MIXOUT=$(mktemp)
SRVLOG=$(mktemp)
OBDAQD_BIN=$(mktemp)
OBDAQD_PID=""
cleanup() {
    [ -n "$OBDAQD_PID" ] && kill "$OBDAQD_PID" 2> /dev/null
    rm -f "$RUNLOG" "$MIXOUT" "$SRVLOG" "$OBDAQD_BIN"
}
trap cleanup EXIT
go run ./cmd/mixer -breakdown -scales 1 -seedscale 0.15 -runs 1 -warmup 0 \
    -triples=false -clients 1 -queries q2,q3 -jsonl "$RUNLOG" > /dev/null
go run ./cmd/mixer -validatejsonl "$RUNLOG"
grep -q '"schema":2' "$RUNLOG" || {
    echo "run-log smoke: records not stamped with schema v2" >&2
    exit 1
}

# Plan-cache smoke: repeated runs with concurrent clients and the cache on
# (the default) must serve warm executions from the compiled-query cache —
# the metric exposition has to show a nonzero hit count.
go run ./cmd/mixer -breakdown -scales 1 -seedscale 0.15 -runs 2 -warmup 0 \
    -triples=false -clients 2 -queries q2,q3 -plancache -metrics \
    -jsonl "$RUNLOG" > "$MIXOUT"
go run ./cmd/mixer -validatejsonl "$RUNLOG"
grep -E 'npdbench_compile_cache_hits_total [1-9]' "$MIXOUT" > /dev/null || {
    echo "plan-cache smoke: no cache hits in metric exposition" >&2
    cat "$MIXOUT" >&2
    exit 1
}

# Parallel-execution smoke: a mix with intra-query parallelism on must
# actually fan work out — the npdbench_exec_parallel_* family has to show
# dispatched tasks and parallel union arms.
go run ./cmd/mixer -breakdown -scales 1 -seedscale 0.15 -runs 1 -warmup 0 \
    -triples=false -clients 2 -parallel 4 -metrics -queries q2,q6,q9 > "$MIXOUT"
grep -E 'npdbench_exec_parallel_tasks_total [1-9]' "$MIXOUT" > /dev/null || {
    echo "parallel smoke: no parallel tasks in metric exposition" >&2
    cat "$MIXOUT" >&2
    exit 1
}
grep -E 'npdbench_exec_parallel_union_arms_total [1-9]' "$MIXOUT" > /dev/null || {
    echo "parallel smoke: no parallel union arms in metric exposition" >&2
    cat "$MIXOUT" >&2
    exit 1
}

# Serving-telemetry smoke: a mix with the slow log and a 0s slow threshold
# must capture executions, and the exposition must carry the runtime-metrics
# family (goroutines can never be zero in a live process) plus the usage
# accounting counters.
go run ./cmd/mixer -breakdown -scales 1 -seedscale 0.15 -runs 1 -warmup 0 \
    -triples=false -clients 1 -queries q2,q3 -slowlog 4 -slowthreshold 1us \
    -metrics > "$MIXOUT"
grep -E 'slow log: [1-9][0-9]* of' "$MIXOUT" > /dev/null || {
    echo "telemetry smoke: slow log captured nothing" >&2
    cat "$MIXOUT" >&2
    exit 1
}
grep -E 'npdbench_runtime_goroutines [1-9]' "$MIXOUT" > /dev/null || {
    echo "telemetry smoke: runtime-metrics family missing or zero" >&2
    cat "$MIXOUT" >&2
    exit 1
}
grep -E 'npdbench_usage_rows_scanned_total [1-9]' "$MIXOUT" > /dev/null || {
    echo "telemetry smoke: usage accounting counters missing" >&2
    cat "$MIXOUT" >&2
    exit 1
}

# The slow-query log as served over HTTP: obdaq -slowlog prints the same
# JSON document /debug/slowlog serves; it must contain a captured entry
# with a trace id.
go run ./cmd/obdaq -q q2 -seedscale 0.15 -slowlog 2 -slowthreshold 1us \
    -rows 0 > "$MIXOUT"
grep -q '"trace_id"' "$MIXOUT" || {
    echo "telemetry smoke: obdaq slow log has no captured entry" >&2
    cat "$MIXOUT" >&2
    exit 1
}

# Bench-regression differ: the committed fixture pair plants one genuine
# regression (exit 1); self-diffing the repo's own parallel benchmark
# report must be clean (exit 0).
if go run ./cmd/mixer -benchdiff \
    internal/mixer/testdata/benchdiff_old.jsonl \
    internal/mixer/testdata/benchdiff_new.jsonl > /dev/null; then
    echo "benchdiff: seeded regression fixture not flagged" >&2
    exit 1
fi
go run ./cmd/mixer -benchdiff BENCH_parallel.json BENCH_parallel.json > /dev/null

# Determinism under a single OS thread: parallel scheduling interleaves
# completely differently with GOMAXPROCS=1, and results (parallel vs
# sequential, batched vs row-at-a-time) must still be bit-identical.
GOMAXPROCS=1 go test -run 'TestParallelSequentialIdentical|TestBatchRowIdentical' .

# Parallel-speedup benchmark: the full 21-query NPD mix at parallelism
# 1/2/NumCPU. Fails when any parallel level's answers diverge from the
# sequential baseline; the report (p50/p95 per query, speedup vs
# sequential) is the repo's BENCH_parallel.json.
go run ./cmd/mixer -parbench BENCH_parallel.json -seedscale 0.15 -runs 3 -warmup 1 | tee "$MIXOUT"
if grep -q 'identical=false' "$MIXOUT"; then
    echo "parbench: parallel results diverge from sequential" >&2
    exit 1
fi

# Batch-size benchmark: the full 21-query NPD mix at batch sizes
# 1/256/1024/4096. Fails when any batched level's answers diverge from the
# row-at-a-time baseline; the report (p50/p95 per query, allocations per
# execution, speedup vs the row path) is the repo's BENCH_batch.json. The
# committed batchbench fixture pair plants a regression the differ must
# flag, and the fresh report must self-diff clean.
go run ./cmd/mixer -batchbench BENCH_batch.json -seedscale 0.15 -runs 3 -warmup 1 | tee "$MIXOUT"
if grep -q 'identical=false' "$MIXOUT"; then
    echo "batchbench: batched results diverge from the row path" >&2
    exit 1
fi
if go run ./cmd/mixer -benchdiff \
    internal/mixer/testdata/batchbench_old.json \
    internal/mixer/testdata/batchbench_new.json > /dev/null; then
    echo "benchdiff: seeded batchbench regression fixture not flagged" >&2
    exit 1
fi
go run ./cmd/mixer -benchdiff BENCH_batch.json BENCH_batch.json > /dev/null

# Serving smoke: a live obdaqd endpoint driven by the open-loop mixer.
# The mixer exits nonzero when any rate completes zero queries or hits a
# protocol error, and BENCH_serve.json (the repo's committed serving
# report) must carry a nonzero QMpH at every rate. Then the endpoint has
# to survive a SIGHUP mapping reload mid-life and drain cleanly on
# SIGTERM.
go build -o "$OBDAQD_BIN" ./cmd/obdaqd
"$OBDAQD_BIN" -http 127.0.0.1:18685 -seedscale 0.15 -timeout 2s > "$SRVLOG" 2>&1 &
OBDAQD_PID=$!
go run ./cmd/mixer -servebench BENCH_serve.json \
    -endpoint http://127.0.0.1:18685 -rates 5,20 -rateduration 3s -tenants 2
if grep -q '"qmph": 0,' BENCH_serve.json; then
    echo "serving smoke: a rate reports zero QMpH" >&2
    cat BENCH_serve.json >&2
    exit 1
fi
kill -HUP "$OBDAQD_PID"
sleep 1
grep -q 'reload complete' "$SRVLOG" || {
    echo "serving smoke: SIGHUP reload not confirmed" >&2
    cat "$SRVLOG" >&2
    exit 1
}
# The endpoint must keep answering after the reload.
go run ./cmd/mixer -servebench "$MIXOUT" \
    -endpoint http://127.0.0.1:18685 -rates 5 -rateduration 2s -tenants 1 \
    -queries q2,q3,q7 > /dev/null
kill -TERM "$OBDAQD_PID"
wait "$OBDAQD_PID"
OBDAQD_PID=""
grep -q 'shutdown complete' "$SRVLOG" || {
    echo "serving smoke: graceful shutdown not confirmed" >&2
    cat "$SRVLOG" >&2
    exit 1
}
