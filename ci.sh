#!/bin/sh
# ci.sh — the tier-1+ gate. Everything here must pass before merging:
# formatting, build (library and commands), vet, repolint, the full test
# suite under the race detector (which also runs the planck plan verifier
# on every engine query), and a clean obdalint run over the benchmark
# artifacts (see ROADMAP.md).
set -eux

UNFORMATTED=$(gofmt -l cmd internal examples *.go)
if [ -n "$UNFORMATTED" ]; then
    echo "gofmt needed on:" >&2
    echo "$UNFORMATTED" >&2
    exit 1
fi
go build ./...
go build ./cmd/...
go vet ./...
go run ./cmd/repolint internal cmd
go test -race ./...
go run ./cmd/obdalint -strict -quiet

# Instrumented smoke run: one client, one small mix, with the JSONL run log
# on; the validator fails the gate when the log is empty or malformed.
RUNLOG=$(mktemp)
MIXOUT=$(mktemp)
trap 'rm -f "$RUNLOG" "$MIXOUT"' EXIT
go run ./cmd/mixer -breakdown -scales 1 -seedscale 0.15 -runs 1 -warmup 0 \
    -triples=false -clients 1 -queries q2,q3 -jsonl "$RUNLOG" > /dev/null
go run ./cmd/mixer -validatejsonl "$RUNLOG"

# Plan-cache smoke: repeated runs with concurrent clients and the cache on
# (the default) must serve warm executions from the compiled-query cache —
# the metric exposition has to show a nonzero hit count.
go run ./cmd/mixer -breakdown -scales 1 -seedscale 0.15 -runs 2 -warmup 0 \
    -triples=false -clients 2 -queries q2,q3 -plancache -metrics \
    -jsonl "$RUNLOG" > "$MIXOUT"
go run ./cmd/mixer -validatejsonl "$RUNLOG"
grep -E 'npdbench_compile_cache_hits_total [1-9]' "$MIXOUT" > /dev/null || {
    echo "plan-cache smoke: no cache hits in metric exposition" >&2
    cat "$MIXOUT" >&2
    exit 1
}
