#!/bin/sh
# ci.sh — the tier-1+ gate. Everything here must pass before merging:
# formatting, build (library and commands), vet, repolint, the full test
# suite under the race detector (which also runs the planck plan verifier
# on every engine query), and a clean obdalint run over the benchmark
# artifacts (see ROADMAP.md).
set -eux

UNFORMATTED=$(gofmt -l cmd internal examples *.go)
if [ -n "$UNFORMATTED" ]; then
    echo "gofmt needed on:" >&2
    echo "$UNFORMATTED" >&2
    exit 1
fi
go build ./...
go build ./cmd/...
go vet ./...
go run ./cmd/repolint internal cmd
go test -race ./...
go run ./cmd/obdalint -strict -quiet

# Instrumented smoke run: one client, one small mix, with the JSONL run log
# on; the validator fails the gate when the log is empty or malformed.
RUNLOG=$(mktemp)
trap 'rm -f "$RUNLOG"' EXIT
go run ./cmd/mixer -breakdown -scales 1 -seedscale 0.15 -runs 1 -warmup 0 \
    -triples=false -clients 1 -queries q2,q3 -jsonl "$RUNLOG" > /dev/null
go run ./cmd/mixer -validatejsonl "$RUNLOG"
