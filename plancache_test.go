package npdbench

import (
	"testing"

	"npdbench/internal/core"
	"npdbench/internal/npd"
)

func cacheEngines(t testing.TB) (cached, uncached *core.Engine) {
	t.Helper()
	db, err := npd.NewSeededDatabase(npd.SeedConfig{Scale: 0.15, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	spec := core.Spec{
		Onto: npd.NewOntology(), Mapping: npd.NewMapping(),
		DB: db, Prefixes: npd.Prefixes(),
	}
	withCache := core.DefaultOptions()
	withCache.VerifyPlans = core.VerifyOn
	withoutCache := withCache
	withoutCache.PlanCache = false
	cached, err = core.NewEngine(spec, withCache)
	if err != nil {
		t.Fatal(err)
	}
	uncached, err = core.NewEngine(spec, withoutCache)
	if err != nil {
		t.Fatal(err)
	}
	return cached, uncached
}

// TestPlanCacheSoundNPD runs every NPD query through two engines that
// differ only in Options.PlanCache. The cached engine answers each query
// twice — a cold compile and a warm hit — and all three answer sets must
// be identical: serving a memoized plan may never change an answer.
func TestPlanCacheSoundNPD(t *testing.T) {
	engCache, engPlain := cacheEngines(t)
	totalHits := 0
	for _, q := range npd.Queries() {
		parsed, err := engCache.ParseQuery(q.SPARQL)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := engCache.Answer(parsed)
		if err != nil {
			t.Fatalf("%s (cache, cold): %v", q.ID, err)
		}
		warm, err := engCache.Answer(parsed)
		if err != nil {
			t.Fatalf("%s (cache, warm): %v", q.ID, err)
		}
		plain, err := engPlain.Answer(parsed)
		if err != nil {
			t.Fatalf("%s (no cache): %v", q.ID, err)
		}
		totalHits += warm.Stats.PlanCacheHits
		rCold, rWarm, rPlain := renderRows(cold), renderRows(warm), renderRows(plain)
		if len(rCold) != len(rPlain) || len(rWarm) != len(rPlain) {
			t.Errorf("%s: answers diverge — cold %d, warm %d, uncached %d rows",
				q.ID, len(rCold), len(rWarm), len(rPlain))
			continue
		}
		for i := range rPlain {
			if rCold[i] != rPlain[i] || rWarm[i] != rPlain[i] {
				t.Errorf("%s: row %d diverges:\ncold:     %s\nwarm:     %s\nuncached: %s",
					q.ID, i, rCold[i], rWarm[i], rPlain[i])
				break
			}
		}
	}
	if totalHits == 0 {
		t.Error("no NPD query hit the plan cache on its warm run; the comparison is vacuous")
	}
	st, on := engCache.PlanCacheStats()
	if !on || st.Hits == 0 || st.Misses == 0 {
		t.Errorf("cache stats %+v, want both hits and misses", st)
	}
}
